#include <gtest/gtest.h>

#include "common/error.h"
#include "serve/queue.h"

namespace crophe::serve {
namespace {

Request
request(u64 id, u32 tenant, double arrival, double deadline)
{
    Request r;
    r.id = id;
    r.tenant = tenant;
    r.arrival = arrival;
    r.deadline = deadline;
    return r;
}

TEST(Queue, PolicyNamesRoundTrip)
{
    EXPECT_EQ(policyByName("fifo"), Policy::Fifo);
    EXPECT_EQ(policyByName("edf"), Policy::Edf);
    EXPECT_EQ(policyByName("wfq"), Policy::Wfq);
    EXPECT_STREQ(policyName(Policy::Wfq), "wfq");
    EXPECT_THROW(policyByName("lifo"), RecoverableError);
}

TEST(Queue, FifoPopsInArrivalOrder)
{
    RequestQueue q(Policy::Fifo, {1.0});
    // Push out of arrival order with distinct batch keys (no merging).
    q.push(request(0, 0, 0.3, 9.0), 30, 0.1, 0.3);
    q.push(request(1, 0, 0.1, 1.0), 10, 0.1, 0.3);
    q.push(request(2, 0, 0.2, 5.0), 20, 0.1, 0.3);
    EXPECT_EQ(q.popBatch(8).front().id, 1u);
    EXPECT_EQ(q.popBatch(8).front().id, 2u);
    EXPECT_EQ(q.popBatch(8).front().id, 0u);
    EXPECT_TRUE(q.empty());
}

TEST(Queue, EdfPopsByDeadline)
{
    RequestQueue q(Policy::Edf, {1.0});
    q.push(request(0, 0, 0.0, 0.9), 1, 0.1, 0.0);
    q.push(request(1, 0, 0.1, 0.3), 2, 0.1, 0.1);
    q.push(request(2, 0, 0.2, 0.6), 3, 0.1, 0.2);
    EXPECT_EQ(q.popBatch(1).front().id, 1u);
    EXPECT_EQ(q.popBatch(1).front().id, 2u);
    EXPECT_EQ(q.popBatch(1).front().id, 0u);
}

TEST(Queue, WfqSharesByWeight)
{
    // Tenant 1 has twice tenant 0's weight; with equal service
    // estimates its backlog drains two-for-one.
    RequestQueue q(Policy::Wfq, {1.0, 2.0});
    for (u64 i = 0; i < 3; ++i)
        q.push(request(i, 0, 0.0, 9.0), 100 + i, 1.0, 0.0);
    for (u64 i = 3; i < 9; ++i)
        q.push(request(i, 1, 0.0, 9.0), 100 + i, 1.0, 0.0);
    // Finish tags: tenant 0 at 1,2,3; tenant 1 at 0.5,1,...,3.
    std::vector<u32> order;
    while (!q.empty())
        order.push_back(q.popBatch(1).front().tenant);
    ASSERT_EQ(order.size(), 9u);
    u32 t1InFirstSix = 0;
    for (std::size_t i = 0; i < 6; ++i)
        t1InFirstSix += order[i] == 1 ? 1 : 0;
    EXPECT_EQ(t1InFirstSix, 4u);
    EXPECT_EQ(order.front(), 1u);
}

TEST(Queue, PopBatchGroupsSameKeyInPriorityOrder)
{
    RequestQueue q(Policy::Fifo, {1.0});
    q.push(request(0, 0, 0.0, 9.0), 7, 0.1, 0.0);
    q.push(request(1, 0, 0.1, 9.0), 8, 0.1, 0.1);  // different template
    q.push(request(2, 0, 0.2, 9.0), 7, 0.1, 0.2);
    q.push(request(3, 0, 0.3, 9.0), 7, 0.1, 0.3);
    auto batch = q.popBatch(8);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].id, 0u);
    EXPECT_EQ(batch[1].id, 2u);
    EXPECT_EQ(batch[2].id, 3u);
    // The skipped-over request is still queued, in order.
    auto rest = q.popBatch(8);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].id, 1u);
    EXPECT_TRUE(q.empty());
}

TEST(Queue, PopBatchHonorsMaxBatch)
{
    RequestQueue q(Policy::Fifo, {1.0});
    for (u64 i = 0; i < 5; ++i)
        q.push(request(i, 0, 0.1 * i, 9.0), 7, 0.2, 0.1 * i);
    EXPECT_EQ(q.popBatch(2).size(), 2u);
    EXPECT_EQ(q.depth(), 3u);
    // maxBatch 0 degrades to a single pop.
    EXPECT_EQ(q.popBatch(0).size(), 1u);
}

TEST(Queue, BacklogTracksServiceEstimates)
{
    RequestQueue q(Policy::Fifo, {1.0});
    EXPECT_EQ(q.backlogSeconds(), 0.0);
    q.push(request(0, 0, 0.0, 9.0), 1, 0.25, 0.0);
    q.push(request(1, 0, 0.0, 9.0), 2, 0.5, 0.0);
    EXPECT_DOUBLE_EQ(q.backlogSeconds(), 0.75);
    q.popBatch(1);
    EXPECT_DOUBLE_EQ(q.backlogSeconds(), 0.5);
    q.popBatch(1);
    EXPECT_EQ(q.backlogSeconds(), 0.0);
}

}  // namespace
}  // namespace crophe::serve
