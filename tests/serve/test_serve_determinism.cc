/**
 * @file
 * The serving determinism contract (DESIGN.md §11): a fixed seed gives
 * byte-identical stats and trace at any thread count; a warm plan cache
 * changes nothing but the plan.cache/serve.plan counters when planning
 * is free, and strictly improves tail latency when planning costs
 * virtual time.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/parallel.h"
#include "graph/params.h"
#include "hw/config.h"
#include "plan/plan_cache.h"
#include "serve/dispatcher.h"
#include "serve/report.h"
#include "telemetry/stats_registry.h"
#include "telemetry/trace_recorder.h"

namespace crophe::serve {
namespace {

Catalog
microCatalog()
{
    return buildCatalog(graph::paramsArk(), {"hmult", "hrot", "matvec"});
}

std::vector<TenantSpec>
twoTenants()
{
    std::vector<TenantSpec> tenants;
    for (u32 i = 0; i < 2; ++i) {
        TenantSpec t;
        t.name = "t" + std::to_string(i);
        t.rate = i == 0 ? 1200.0 : 800.0;
        t.slaSeconds = 100e-6;  // tight: some met, some missed
        t.weight = i == 0 ? 2.0 : 1.0;
        t.bucketRate = i == 0 ? 600.0 : 0.0;  // tenant 0 gets throttled
        t.bucketBurst = 4.0;
        t.mix = {0.5, 0.3, 0.2};
        tenants.push_back(std::move(t));
    }
    return tenants;
}

std::vector<Request>
traffic(const Catalog &cat, const std::vector<TenantSpec> &tenants,
        double duration = 0.05, u64 seed = 77)
{
    TrafficSpec ts;
    ts.durationSeconds = duration;
    ts.seed = seed;
    ts.tenants = tenants;
    return generateTraffic(ts, cat);
}

/** Full serve run -> "<stats json>|<trace json>" byte string. */
std::string
runFingerprint(plan::PlanCache *cache, double planSecondsPerOp,
               Policy policy = Policy::Wfq)
{
    auto cat = microCatalog();
    auto tenants = twoTenants();
    auto arrivals = traffic(cat, tenants);

    telemetry::TraceRecorder trace;
    ServeOptions opt;
    opt.policy = policy;
    opt.maxBatch = 4;
    opt.admission.shedFactor = 4.0;
    opt.planSecondsPerOp = planSecondsPerOp;
    opt.planCache = cache;
    opt.trace = &trace;
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto rep = buildReport(d.run(arrivals, 0.05), tenants);

    telemetry::StatsRegistry reg;
    registerReport(rep, reg);
    if (cache != nullptr)
        cache->registerStats(reg);
    std::ostringstream os;
    reg.dumpJson(os);
    os << "|";
    trace.writeJson(os);
    return os.str();
}

/** Registry text dump with every plan-related line removed. */
std::string
statsTextWithoutPlanLines(const ServeReport &rep, plan::PlanCache &cache)
{
    telemetry::StatsRegistry reg;
    registerReport(rep, reg);
    cache.registerStats(reg);
    std::ostringstream os;
    reg.dumpText(os);
    std::istringstream in(os.str());
    std::string line, kept;
    while (std::getline(in, line))
        if (line.find("plan") == std::string::npos)
            kept += line + "\n";
    return kept;
}

TEST(ServeDeterminism, ByteIdenticalStatsAndTraceAcrossThreadCounts)
{
    // Each run uses a fresh memory-only cache (cold), so the plan.cache
    // counters are part of the fingerprint too.
    ThreadPool::setGlobalThreads(1);
    plan::PlanCache c1;
    const std::string one = runFingerprint(&c1, 1e-5);
    ThreadPool::setGlobalThreads(2);
    plan::PlanCache c2;
    const std::string two = runFingerprint(&c2, 1e-5);
    ThreadPool::setGlobalThreads(8);
    plan::PlanCache c8;
    const std::string eight = runFingerprint(&c8, 1e-5);
    ThreadPool::setGlobalThreads(0);  // back to the hardware default

    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, two);
    EXPECT_EQ(two, eight);
}

TEST(ServeDeterminism, WarmCacheEqualsColdCacheModuloPlanCounters)
{
    auto cat = microCatalog();
    auto tenants = twoTenants();
    auto arrivals = traffic(cat, tenants);

    plan::PlanCache cache;  // shared: run 1 fills it, run 2 hits it
    auto runOnce = [&]() {
        ServeOptions opt;
        opt.policy = Policy::Edf;
        opt.maxBatch = 4;
        opt.planSecondsPerOp = 0.0;  // free planning: timing-neutral
        opt.planCache = &cache;
        Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
        return buildReport(d.run(arrivals, 0.05), tenants);
    };
    auto cold = runOnce();
    auto warm = runOnce();

    EXPECT_EQ(cold.planCacheHits, 0u);
    EXPECT_EQ(warm.planCompiles, 3u);
    EXPECT_EQ(warm.planCacheHits, 3u);  // 100% >= the 90% bar
    EXPECT_EQ(statsTextWithoutPlanLines(cold, cache),
              statsTextWithoutPlanLines(warm, cache));
}

TEST(ServeDeterminism, WarmCacheStrictlyImprovesTailLatency)
{
    auto cat = microCatalog();
    auto tenants = twoTenants();
    auto arrivals = traffic(cat, tenants);

    plan::PlanCache cache;
    auto runOnce = [&]() {
        ServeOptions opt;
        opt.policy = Policy::Edf;
        opt.maxBatch = 4;
        // Cache misses pay a virtual planning latency that dwarfs the
        // micro-template service times; hits pay nothing.
        opt.planSecondsPerOp = 1e-4;
        opt.planCache = &cache;
        Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
        return buildReport(d.run(arrivals, 0.05), tenants);
    };
    auto cold = runOnce();
    auto warm = runOnce();

    EXPECT_EQ(warm.planCacheHits, warm.planCompiles);
    EXPECT_LT(warm.total.p99Ms, cold.total.p99Ms);
    EXPECT_LT(warm.total.p50Ms, cold.total.p50Ms);
    EXPECT_LE(warm.horizonSeconds, cold.horizonSeconds);
}

TEST(ServeDeterminism, PoliciesShareArrivalsButReorderService)
{
    // Same trace under fifo/edf/wfq: identical offered counts,
    // deterministic (possibly different) service orders each.
    plan::PlanCache c1, c2;
    EXPECT_EQ(runFingerprint(&c1, 0.0, Policy::Fifo),
              runFingerprint(&c2, 0.0, Policy::Fifo));
    plan::PlanCache c3, c4;
    EXPECT_EQ(runFingerprint(&c3, 0.0, Policy::Edf),
              runFingerprint(&c4, 0.0, Policy::Edf));
}

}  // namespace
}  // namespace crophe::serve
