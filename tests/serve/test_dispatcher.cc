#include <gtest/gtest.h>

#include "graph/params.h"
#include "hw/config.h"
#include "serve/dispatcher.h"
#include "serve/report.h"
#include "telemetry/stats_registry.h"

namespace crophe::serve {
namespace {

Catalog
microCatalog()
{
    return buildCatalog(graph::paramsArk(), {"hmult", "hrot", "matvec"});
}

std::vector<TenantSpec>
oneTenant(double sla = 10.0, double bucketRate = 0.0,
          double bucketBurst = 1.0)
{
    TenantSpec t;
    t.name = "t0";
    t.rate = 1.0;
    t.slaSeconds = sla;
    t.bucketRate = bucketRate;
    t.bucketBurst = bucketBurst;
    t.mix = {1.0, 1.0, 1.0};
    return {t};
}

Request
request(u64 id, u32 templateIdx, double arrival, double sla = 10.0)
{
    Request r;
    r.id = id;
    r.tenant = 0;
    r.templateIdx = templateIdx;
    r.arrival = arrival;
    r.deadline = arrival + sla;
    return r;
}

/** Synthetic per-template service model keyed by template name. */
ServeOptions
stubOptions(double cold0, double warm0, double cold1 = 0.2,
            double warm1 = 0.08)
{
    ServeOptions opt;
    opt.policy = Policy::Fifo;
    opt.admission.shedFactor = 0.0;
    opt.serviceModel = [=](const RequestTemplate &t) {
        ServiceTimes st;
        if (t.name == "hmult") {
            st.coldSeconds = cold0;
            st.warmSeconds = warm0;
        } else {
            st.coldSeconds = cold1;
            st.warmSeconds = warm1;
        }
        return st;
    };
    return opt;
}

TEST(Dispatcher, BatchesCompatibleRequestsAndModelsOccupancy)
{
    auto cat = microCatalog();
    auto tenants = oneTenant();
    Dispatcher d(hw::configCrophe64(), cat, tenants,
                 stubOptions(0.1, 0.05));
    std::vector<Request> arrivals = {request(0, 0, 0.0),
                                     request(1, 0, 0.01),
                                     request(2, 0, 0.02)};
    auto res = d.run(arrivals, 1.0);
    ASSERT_EQ(res.outcomes.size(), 3u);
    // r0 dispatches alone (cold): busy [0, 0.1).
    EXPECT_DOUBLE_EQ(res.outcomes[0].start, 0.0);
    EXPECT_DOUBLE_EQ(res.outcomes[0].finish, 0.1);
    EXPECT_EQ(res.outcomes[0].batchSize, 1u);
    // r1 + r2 queue behind it and dispatch as one batch; same template
    // back-to-back keeps aux resident, so both run warm.
    for (int i = 1; i <= 2; ++i) {
        EXPECT_DOUBLE_EQ(res.outcomes[i].start, 0.1);
        EXPECT_DOUBLE_EQ(res.outcomes[i].finish, 0.2);
        EXPECT_EQ(res.outcomes[i].batchSize, 2u);
        EXPECT_TRUE(res.outcomes[i].slaMet);
    }
    EXPECT_EQ(res.batches, 2u);
    EXPECT_EQ(res.batchedRequests, 3u);
    EXPECT_DOUBLE_EQ(res.busySeconds, 0.2);
    EXPECT_DOUBLE_EQ(res.horizonSeconds, 1.0);
    EXPECT_EQ(res.planCompiles, 1u);
}

TEST(Dispatcher, BatchSkipsIncompatibleTemplatesAndPaysColdOnSwitch)
{
    auto cat = microCatalog();
    auto tenants = oneTenant();
    Dispatcher d(hw::configCrophe64(), cat, tenants,
                 stubOptions(0.1, 0.04, 0.2, 0.08));
    // A and C share a template; B (other template) sits between them.
    std::vector<Request> arrivals = {request(0, 0, 0.0),
                                     request(1, 1, 0.0),
                                     request(2, 0, 0.0)};
    auto res = d.run(arrivals, 1.0);
    ASSERT_EQ(res.outcomes.size(), 3u);
    // Batch 1: A + C (cold + warm = 0.14).
    EXPECT_DOUBLE_EQ(res.outcomes[0].finish, 0.14);
    EXPECT_DOUBLE_EQ(res.outcomes[2].finish, 0.14);
    EXPECT_EQ(res.outcomes[0].batchSize, 2u);
    // Batch 2: B switches templates, so it pays its cold time.
    EXPECT_DOUBLE_EQ(res.outcomes[1].start, 0.14);
    EXPECT_DOUBLE_EQ(res.outcomes[1].finish, 0.34);
    EXPECT_EQ(res.batches, 2u);
}

TEST(Dispatcher, VirtualPlanningChargeAppliesOncePerTemplate)
{
    auto cat = microCatalog();
    auto tenants = oneTenant();
    auto opt = stubOptions(0.1, 0.04);
    opt.serviceModel = [](const RequestTemplate &) {
        ServiceTimes st;
        st.coldSeconds = 0.1;
        st.warmSeconds = 0.04;
        st.planSeconds = 0.02;
        return st;
    };
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    std::vector<Request> arrivals = {request(0, 0, 0.0),
                                     request(1, 0, 0.5)};
    auto res = d.run(arrivals, 1.0);
    // First batch pays plan + cold; planning does not occupy the
    // accelerator's compute accounting.
    EXPECT_DOUBLE_EQ(res.outcomes[0].finish, 0.12);
    EXPECT_DOUBLE_EQ(res.busySeconds, 0.1 + 0.04);
    // Second batch of the same template: no plan charge, aux resident.
    EXPECT_DOUBLE_EQ(res.outcomes[1].start, 0.5);
    EXPECT_DOUBLE_EQ(res.outcomes[1].finish, 0.54);
}

TEST(Dispatcher, OverloadSheddingCountsAreExact)
{
    auto cat = microCatalog();
    // Fixed arrivals at 0.1 .. 0.9, SLA 50 ms, shed past 1 x SLA,
    // service 250 ms: the hand-computed timeline admits exactly
    // r0 (0.1), r2 (0.3), r5 (0.6), r7 (0.8).
    auto tenants = oneTenant(0.05);
    tenants[0].process = ArrivalProcess::Fixed;
    tenants[0].rate = 10.0;
    TrafficSpec ts;
    ts.durationSeconds = 1.0;
    ts.seed = 123;
    ts.tenants = tenants;
    auto arrivals = generateTraffic(ts, cat);
    ASSERT_EQ(arrivals.size(), 9u);

    auto opt = stubOptions(0.25, 0.25, 0.25, 0.25);
    opt.admission.shedFactor = 1.0;
    opt.maxBatch = 1;
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto res = d.run(arrivals, 1.0);
    auto rep = buildReport(res, tenants);
    EXPECT_EQ(rep.total.offered, 9u);
    EXPECT_EQ(rep.total.admitted, 4u);
    EXPECT_EQ(rep.total.rejectedOverload, 5u);
    EXPECT_EQ(rep.total.rejectedThrottled, 0u);
    std::vector<u64> admitted;
    for (const auto &o : res.outcomes)
        if (o.disposition == Disposition::Completed)
            admitted.push_back(o.id);
    EXPECT_EQ(admitted, (std::vector<u64>{0, 2, 5, 7}));
}

TEST(Dispatcher, ThrottleCountsAreExact)
{
    auto cat = microCatalog();
    // Fixed 10 req/s against a 2.5 token/s bucket of burst 1: exactly
    // every fourth arrival finds a full token (0.1, 0.5, 0.9).
    auto tenants = oneTenant(10.0, /*bucketRate=*/2.5, /*bucketBurst=*/1.0);
    tenants[0].process = ArrivalProcess::Fixed;
    tenants[0].rate = 10.0;
    TrafficSpec ts;
    ts.durationSeconds = 1.0;
    ts.seed = 9;
    ts.tenants = tenants;
    auto arrivals = generateTraffic(ts, cat);
    ASSERT_EQ(arrivals.size(), 9u);

    auto opt = stubOptions(0.001, 0.001, 0.001, 0.001);
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto rep = buildReport(d.run(arrivals, 1.0), tenants);
    EXPECT_EQ(rep.total.admitted, 3u);
    EXPECT_EQ(rep.total.rejectedThrottled, 6u);
    EXPECT_EQ(rep.total.rejectedOverload, 0u);
}

TEST(Dispatcher, CancellationTruncatesTheRun)
{
    auto cat = microCatalog();
    auto tenants = oneTenant();
    auto opt = stubOptions(0.1, 0.05);
    int polls = 0;
    opt.cancelled = [&polls]() { return ++polls > 1; };
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    std::vector<Request> arrivals = {request(0, 0, 0.0),
                                     request(1, 0, 0.2)};
    auto res = d.run(arrivals, 1.0);
    EXPECT_TRUE(res.truncated);
    EXPECT_LT(res.outcomes.size(), 2u);
}

TEST(Dispatcher, TraceRecordsSpansInVirtualMicroseconds)
{
    auto cat = microCatalog();
    auto tenants = oneTenant();
    auto opt = stubOptions(0.1, 0.05);
    telemetry::TraceRecorder trace;
    opt.trace = &trace;
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    d.run({request(0, 0, 0.0)}, 1.0);
    ASSERT_FALSE(trace.events().empty());
    bool sawAccel = false, sawTenant = false;
    for (const auto &e : trace.events()) {
        if (e.phase != 'X')
            continue;
        const std::string track = trace.trackName(e.pid, e.tid);
        if (track == "accelerator") {
            sawAccel = true;
            EXPECT_DOUBLE_EQ(e.ts, 0.0);
            EXPECT_DOUBLE_EQ(e.dur, 0.1 * 1e6);
        }
        if (track == "tenant:t0")
            sawTenant = true;
    }
    EXPECT_TRUE(sawAccel);
    EXPECT_TRUE(sawTenant);
}

TEST(Report, PercentilesAndFairness)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(i);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.50), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.95), 95.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 99.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(percentile({42.0}, 0.99), 42.0);
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);

    EXPECT_DOUBLE_EQ(jainIndex({1.0, 1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({1.0, 0.0}), 0.5);
    EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({0.0, 0.0}), 1.0);
}

TEST(Report, RegistersServeStats)
{
    auto cat = microCatalog();
    auto tenants = oneTenant();
    Dispatcher d(hw::configCrophe64(), cat, tenants,
                 stubOptions(0.1, 0.05));
    auto rep = buildReport(
        d.run({request(0, 0, 0.0), request(1, 1, 0.05)}, 1.0), tenants);
    telemetry::StatsRegistry reg;
    registerReport(rep, reg);
    EXPECT_EQ(reg.value("serve.requests.offered"), 2.0);
    EXPECT_EQ(reg.value("serve.requests.completed"), 2.0);
    EXPECT_EQ(reg.value("serve.batch.count"), 2.0);
    EXPECT_EQ(reg.value("serve.plan.compiles"), 2.0);
    EXPECT_EQ(reg.value("serve.tenant.t0.sla.met"), 2.0);
    EXPECT_GT(reg.value("serve.fairness.jain"), 0.0);
    EXPECT_GT(reg.value("serve.accel.utilization"), 0.0);
}

}  // namespace
}  // namespace crophe::serve
