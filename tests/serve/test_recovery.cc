/**
 * @file
 * Online failure recovery (DESIGN.md §14): retry backoff and the
 * circuit-breaker state machine as units, then the dispatcher's
 * recovery behavior end to end — transient batch failures, mid-run chip
 * loss with batch replay, hedged dispatch, degraded admission — all in
 * hand-computable virtual time via the synthetic service model, plus
 * the conservation invariant (offered == completed + rejected +
 * expired) and byte-identity of chaos runs across thread counts and
 * seeds on the real catalog.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/parallel.h"
#include "graph/params.h"
#include "hw/config.h"
#include "serve/admission.h"
#include "serve/dispatcher.h"
#include "serve/recovery.h"
#include "serve/report.h"
#include "telemetry/stats_registry.h"

namespace crophe::serve {
namespace {

TEST(RetryBackoff, DoublesPerAttemptAndCaps)
{
    RecoveryOptions opt;
    opt.retryBackoffSeconds = 0.010;
    opt.retryBackoffCapSeconds = 0.035;
    EXPECT_DOUBLE_EQ(retryBackoff(opt, 1), 0.010);
    EXPECT_DOUBLE_EQ(retryBackoff(opt, 2), 0.020);
    EXPECT_DOUBLE_EQ(retryBackoff(opt, 3), 0.035);  // capped, not 0.040
    EXPECT_DOUBLE_EQ(retryBackoff(opt, 10), 0.035);
}

TEST(CircuitBreaker, DisabledBreakerAlwaysAdmits)
{
    RecoveryOptions opt;  // breakerThreshold = 0
    CircuitBreaker b(opt, 1);
    EXPECT_TRUE(b.disabled());
    b.onFailure(0, 0.0);
    b.onFailure(0, 1.0);
    EXPECT_TRUE(b.tryAdmit(0, 2.0));
    EXPECT_EQ(b.trips(), 0u);
}

TEST(CircuitBreaker, TripsHalfOpensAndRecovers)
{
    RecoveryOptions opt;
    opt.breakerThreshold = 2;
    opt.breakerResetSeconds = 1.0;
    CircuitBreaker b(opt, 2);

    // Two consecutive failures trip tenant 0; tenant 1 is untouched.
    b.onFailure(0, 0.1);
    EXPECT_EQ(b.state(0), CircuitBreaker::State::Closed);
    b.onFailure(0, 0.2);
    EXPECT_EQ(b.state(0), CircuitBreaker::State::Open);
    EXPECT_EQ(b.trips(), 1u);
    EXPECT_FALSE(b.tryAdmit(0, 0.5));  // still inside the reset dwell
    EXPECT_TRUE(b.tryAdmit(1, 0.5));

    // Past the dwell the next attempt half-opens and admits one trial;
    // concurrent attempts keep being rejected until it resolves.
    EXPECT_TRUE(b.tryAdmit(0, 1.3));
    EXPECT_EQ(b.state(0), CircuitBreaker::State::HalfOpen);
    EXPECT_EQ(b.halfOpens(), 1u);
    EXPECT_FALSE(b.tryAdmit(0, 1.4));

    // Trial failure re-opens for another full dwell.
    b.onFailure(0, 1.5);
    EXPECT_EQ(b.state(0), CircuitBreaker::State::Open);
    EXPECT_EQ(b.trips(), 2u);
    EXPECT_FALSE(b.tryAdmit(0, 2.0));

    // Second trial succeeds: breaker closes, failure count cleared.
    EXPECT_TRUE(b.tryAdmit(0, 2.6));
    b.onSuccess(0);
    EXPECT_EQ(b.state(0), CircuitBreaker::State::Closed);
    b.onFailure(0, 3.0);  // one failure does not re-trip
    EXPECT_EQ(b.state(0), CircuitBreaker::State::Closed);
    EXPECT_EQ(b.trips(), 2u);
}

TEST(Admission, CapacityFractionScalesBucketsAndShedThreshold)
{
    TenantSpec t;
    t.name = "t0";
    t.slaSeconds = 1.0;
    t.bucketRate = 10.0;
    t.bucketBurst = 1.0;
    AdmissionOptions opt;
    opt.shedFactor = 1.0;
    Request r;

    {  // Healthy: one token at t=0, refilled by t=0.1 at 10/s.
        AdmissionController a(opt, {t});
        EXPECT_FALSE(a.decide(r, 0.0, 0.0, 0).has_value());
        EXPECT_FALSE(a.decide(r, 0.1, 0.0, 0).has_value());
    }
    {  // Half capacity from t=0: the 0.1 s refill only accrues half a
       // token, so the second request throttles.
        AdmissionController a(opt, {t});
        EXPECT_FALSE(a.decide(r, 0.0, 0.0, 0).has_value());
        a.setCapacityFraction(0.5, 0.0);
        auto why = a.decide(r, 0.1, 0.0, 0);
        ASSERT_TRUE(why.has_value());
        EXPECT_EQ(*why, RejectReason::Throttled);
    }
    {  // The shed threshold scales too (unlimited bucket, so the
       // throttle check cannot fire first): a projected wait of
       // 0.9 × SLA passes healthy but sheds at half capacity.
        TenantSpec unlimited = t;
        unlimited.bucketRate = 0.0;
        AdmissionController a(opt, {unlimited});
        EXPECT_FALSE(a.decide(r, 0.0, 0.9, 0).has_value());
        a.setCapacityFraction(0.5, 0.1);
        auto why = a.decide(r, 0.2, 0.9, 0);
        ASSERT_TRUE(why.has_value());
        EXPECT_EQ(*why, RejectReason::Overload);
        // Restoring full capacity restores the healthy threshold.
        a.setCapacityFraction(1.0, 0.3);
        EXPECT_FALSE(a.decide(r, 0.4, 0.9, 0).has_value());
    }
}

// ---------------------------------------------------------------------
// Dispatcher scenarios on the synthetic service model: cold 0.1 s, warm
// 0.05 s for every template, so every timeline below is hand-computed.
// ---------------------------------------------------------------------

Catalog
microCatalog()
{
    return buildCatalog(graph::paramsArk(), {"hmult", "hrot", "matvec"});
}

std::vector<TenantSpec>
oneTenant(double sla = 10.0)
{
    TenantSpec t;
    t.name = "t0";
    t.rate = 1.0;
    t.slaSeconds = sla;
    t.mix = {1.0, 1.0, 1.0};
    return {t};
}

Request
request(u64 id, double arrival, double sla = 10.0)
{
    Request r;
    r.id = id;
    r.tenant = 0;
    r.templateIdx = 0;
    r.arrival = arrival;
    r.deadline = arrival + sla;
    return r;
}

ServeOptions
stubOptions()
{
    ServeOptions opt;
    opt.policy = Policy::Fifo;
    opt.admission.shedFactor = 0.0;
    opt.recovery.retryBackoffSeconds = 0.010;
    opt.recovery.repartitionSeconds = 0.050;
    opt.serviceModel = [](const RequestTemplate &) {
        ServiceTimes st;
        st.coldSeconds = 0.1;
        st.warmSeconds = 0.05;
        return st;
    };
    return opt;
}

TEST(Recovery, TransientBatchFailureRetriesThenExpires)
{
    // batch-fail = 1.0: every dispatch fails. One request, 2 retries:
    //   d1 [0, 0.1) cold, fail; replay ready 0.11
    //   d2 [0.11, 0.16) warm (aux resident), fail; ready 0.18
    //   d3 [0.18, 0.23) warm, fail; attempts 3 > 2 -> expires at 0.23.
    auto cat = microCatalog();
    auto tenants = oneTenant();
    ServeOptions opt = stubOptions();
    opt.faultPlan = fault::FaultPlan::parse("batch-fail=1");
    opt.recovery.maxRetries = 2;
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto res = d.run({request(0, 0.0)}, 1.0);

    ASSERT_EQ(res.outcomes.size(), 1u);
    EXPECT_EQ(res.outcomes[0].disposition, Disposition::Expired);
    EXPECT_DOUBLE_EQ(res.outcomes[0].finish, 0.23);
    EXPECT_EQ(res.outcomes[0].attempts, 3u);
    EXPECT_EQ(res.recovery.batchFailures, 3u);
    EXPECT_EQ(res.recovery.replays, 2u);
    EXPECT_EQ(res.recovery.expired, 1u);
    EXPECT_EQ(res.recovery.lostBatches, 0u);
    EXPECT_DOUBLE_EQ(res.busySeconds, 0.2);  // 0.1 + 0.05 + 0.05
}

TEST(Recovery, ChipFailKillsInFlightBatchAndReplaysIt)
{
    // 2-chip pod, chip-fail@0.05=1. The batch dispatched at t=0 would
    // finish at 0.1, so the fault kills it at 0.05; the survivor comes
    // back at 0.05 + 0.05 repartition downtime and serves the replay
    // cold (resident aux died with the chip): [0.10, 0.20).
    auto cat = microCatalog();
    auto tenants = oneTenant();
    ServeOptions opt = stubOptions();
    opt.pod.chips = 2;
    opt.faultPlan = fault::FaultPlan::parse("chip-fail@0.05=1", 2);
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto res = d.run({request(0, 0.0)}, 1.0);

    ASSERT_EQ(res.outcomes.size(), 1u);
    EXPECT_EQ(res.outcomes[0].disposition, Disposition::Completed);
    EXPECT_DOUBLE_EQ(res.outcomes[0].start, 0.10);
    EXPECT_DOUBLE_EQ(res.outcomes[0].finish, 0.20);
    EXPECT_EQ(res.outcomes[0].attempts, 1u);
    EXPECT_EQ(res.recovery.lostBatches, 1u);
    EXPECT_EQ(res.recovery.lostRequests, 1u);
    EXPECT_EQ(res.recovery.replays, 1u);
    EXPECT_EQ(res.recovery.repartitions, 1u);
    EXPECT_DOUBLE_EQ(res.recovery.downtimeSeconds, 0.05);
    EXPECT_EQ(res.recovery.expired, 0u);
    // Killed copy occupied [0, 0.05), the replay [0.10, 0.20).
    EXPECT_DOUBLE_EQ(res.busySeconds, 0.15);
}

TEST(Recovery, RetryInfeasibleWithinDeadlineExpiresEarly)
{
    // SLA 0.12 s: the kill at 0.05 leaves a replay ready at 0.06, but
    // the earliest warm finish (0.10 repartition + 0.05) already misses
    // arrival + 0.12 only if... here 0.06 + 0.05 warm best case = 0.11
    // <= 0.12 passes the replay check, then the batch at 0.10 runs cold
    // to 0.20 and just misses. Tighten to SLA 0.10: 0.06 + 0.05 > 0.10
    // -> the replay expires immediately at 0.06 without re-queueing.
    auto cat = microCatalog();
    auto tenants = oneTenant(0.10);
    ServeOptions opt = stubOptions();
    opt.pod.chips = 2;
    opt.faultPlan = fault::FaultPlan::parse("chip-fail@0.05=1", 2);
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto res = d.run({request(0, 0.0, 0.10)}, 1.0);

    ASSERT_EQ(res.outcomes.size(), 1u);
    EXPECT_EQ(res.outcomes[0].disposition, Disposition::Expired);
    EXPECT_DOUBLE_EQ(res.outcomes[0].finish, 0.06);
    EXPECT_EQ(res.recovery.replays, 0u);  // never re-entered the queue
    EXPECT_EQ(res.recovery.expired, 1u);
}

TEST(Recovery, HedgedReplayDuplicatesOntoIdleGroup)
{
    // 3 chips with hedging: groups {2, 1}. The t=0 batch on the lead
    // group dies at 0.05 (first dispatch is not hedged — only replays
    // are). After the repartition the 2 survivors split {1, 1}; the
    // replay dispatches on both at 0.10, both run cold to 0.20, the
    // primary wins the tie.
    auto cat = microCatalog();
    auto tenants = oneTenant();
    ServeOptions opt = stubOptions();
    opt.pod.chips = 3;
    opt.recovery.hedge = true;
    opt.faultPlan = fault::FaultPlan::parse("chip-fail@0.05=1", 3);
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto res = d.run({request(0, 0.0)}, 1.0);

    ASSERT_EQ(res.outcomes.size(), 1u);
    EXPECT_EQ(res.outcomes[0].disposition, Disposition::Completed);
    EXPECT_DOUBLE_EQ(res.outcomes[0].finish, 0.20);
    EXPECT_TRUE(res.outcomes[0].hedged);
    EXPECT_EQ(res.recovery.hedgedBatches, 1u);
    EXPECT_EQ(res.recovery.hedgeWins, 0u);  // tie goes to the primary
}

TEST(Recovery, BreakerTripsRejectsAndHalfOpens)
{
    // Every batch fails, no retries (fail -> expire), threshold 2:
    //   r0 [0, 0.1) fails -> 1 consecutive
    //   r1 [0.2, 0.25) fails -> trips at 0.25
    //   r2 at 0.3: breaker open -> RejectedBreaker
    //   r3 at 1.5 (> 0.25 + 1.0 reset): half-open trial, fails at 1.55
    //     -> re-opens (trip #2)
    //   r4 at 1.6: still open -> RejectedBreaker
    auto cat = microCatalog();
    auto tenants = oneTenant();
    ServeOptions opt = stubOptions();
    opt.faultPlan = fault::FaultPlan::parse("batch-fail=1");
    opt.recovery.maxRetries = 0;
    opt.recovery.breakerThreshold = 2;
    opt.recovery.breakerResetSeconds = 1.0;
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto res = d.run({request(0, 0.0), request(1, 0.2), request(2, 0.3),
                      request(3, 1.5), request(4, 1.6)},
                     2.0);

    ASSERT_EQ(res.outcomes.size(), 5u);
    EXPECT_EQ(res.outcomes[0].disposition, Disposition::Expired);
    EXPECT_EQ(res.outcomes[1].disposition, Disposition::Expired);
    EXPECT_EQ(res.outcomes[2].disposition, Disposition::RejectedBreaker);
    EXPECT_EQ(res.outcomes[3].disposition, Disposition::Expired);
    EXPECT_EQ(res.outcomes[4].disposition, Disposition::RejectedBreaker);
    EXPECT_EQ(res.recovery.breakerTrips, 2u);
    EXPECT_EQ(res.recovery.breakerHalfOpens, 1u);
    EXPECT_EQ(res.recovery.breakerRejected, 2u);
    EXPECT_EQ(res.recovery.batchFailures, 3u);
}

TEST(Recovery, HealthyRunReportsNoRecoveryActivity)
{
    auto cat = microCatalog();
    auto tenants = oneTenant();
    ServeOptions opt = stubOptions();
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto res = d.run({request(0, 0.0), request(1, 0.01)}, 1.0);
    EXPECT_FALSE(res.recovery.any());
    auto rep = buildReport(res, tenants);
    EXPECT_FALSE(rep.recovery.any());
    // The recovery block stays out of the stats registry entirely.
    telemetry::StatsRegistry reg;
    registerReport(rep, reg);
    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_EQ(os.str().find("recovery"), std::string::npos);
}

// ---------------------------------------------------------------------
// Real-catalog chaos determinism: exact seeded counts before/after a
// chip failure, and the conservation invariant at 1/2/8 threads under
// two seeds.
// ---------------------------------------------------------------------

std::vector<TenantSpec>
twoTenants()
{
    std::vector<TenantSpec> tenants;
    for (u32 i = 0; i < 2; ++i) {
        TenantSpec t;
        t.name = "t" + std::to_string(i);
        t.rate = i == 0 ? 1200.0 : 800.0;
        t.slaSeconds = 100e-6;  // tight: load sheds and retries expire
        t.weight = 1.0;
        t.bucketRate = i == 0 ? 600.0 : 0.0;  // tenant 0 throttles
        t.bucketBurst = 4.0;
        t.mix = {0.5, 0.3, 0.2};
        tenants.push_back(std::move(t));
    }
    return tenants;
}

ServeReport
chaosRun(const std::string &planSpec, u64 seed,
         std::string *fingerprint = nullptr)
{
    auto cat = microCatalog();
    auto tenants = twoTenants();
    TrafficSpec ts;
    ts.durationSeconds = 0.05;
    ts.seed = seed;
    ts.tenants = tenants;
    auto arrivals = generateTraffic(ts, cat);

    ServeOptions opt;
    opt.policy = Policy::Edf;
    opt.maxBatch = 4;
    opt.admission.shedFactor = 4.0;
    opt.pod.chips = 2;
    opt.recovery.maxRetries = 1;
    opt.recovery.retryBackoffSeconds = 1e-4;
    if (!planSpec.empty())
        opt.faultPlan = fault::FaultPlan::parse(planSpec, opt.pod.chips);
    Dispatcher d(hw::configCrophe64(), cat, tenants, opt);
    auto rep = buildReport(d.run(arrivals, 0.05), tenants);
    if (fingerprint != nullptr) {
        telemetry::StatsRegistry reg;
        registerReport(rep, reg);
        std::ostringstream os;
        reg.dumpJson(os);
        *fingerprint = os.str();
    }
    return rep;
}

/** offered == completed + rejected (all three kinds) + expired. */
void
expectConservation(const ServeReport &rep)
{
    const auto &t = rep.total;
    EXPECT_EQ(t.offered, t.completed + t.rejectedThrottled +
                             t.rejectedOverload + t.rejectedBreaker +
                             t.expired);
    EXPECT_EQ(t.admitted, t.completed + t.expired);
}

TEST(RecoveryDeterminism, ExactSeededCountsBeforeAndAfterChipFail)
{
    // Healthy baseline at seed 77...
    auto healthy = chaosRun("", 77);
    expectConservation(healthy);
    EXPECT_EQ(healthy.total.offered, 100u);
    EXPECT_EQ(healthy.total.rejectedThrottled, 30u);
    EXPECT_EQ(healthy.total.rejectedOverload, 0u);
    EXPECT_EQ(healthy.total.expired, 0u);
    EXPECT_EQ(healthy.total.completed, 70u);

    // ...and the same trace with a mid-window chip loss plus transient
    // batch failures: capacity halves, so admission throttles/sheds
    // more and some retries expire. Counts are exact and seeded.
    auto degraded = chaosRun("seed=5,chip-fail@0.02=1,batch-fail=0.2", 77);
    expectConservation(degraded);
    EXPECT_EQ(degraded.total.offered, 100u);
    EXPECT_EQ(degraded.recovery.repartitions, 1u);
    EXPECT_GT(degraded.recovery.batchFailures +
                  degraded.recovery.lostBatches,
              0u);
    EXPECT_GT(degraded.total.rejectedThrottled +
                  degraded.total.rejectedOverload + degraded.total.expired,
              0u);
    // Golden seeded counts (byte-stable across platforms and threads).
    // Fewer throttles than healthy (30): shedding under the halved
    // threshold rejects most of the backlog before tokens are checked.
    EXPECT_EQ(degraded.total.rejectedThrottled, 8u);
    EXPECT_EQ(degraded.total.rejectedOverload, 51u);
    EXPECT_EQ(degraded.total.expired, 16u);
    EXPECT_EQ(degraded.total.completed, 25u);
}

TEST(RecoveryDeterminism, ChaosRunsAreByteIdenticalAcrossThreadCounts)
{
    const std::string plan = "seed=5,chip-fail@0.02=1,batch-fail=0.2";
    for (u64 seed : {77u, 1234u}) {
        std::string one, two, eight;
        ThreadPool::setGlobalThreads(1);
        expectConservation(chaosRun(plan, seed, &one));
        ThreadPool::setGlobalThreads(2);
        expectConservation(chaosRun(plan, seed, &two));
        ThreadPool::setGlobalThreads(8);
        expectConservation(chaosRun(plan, seed, &eight));
        ThreadPool::setGlobalThreads(0);
        EXPECT_FALSE(one.empty());
        EXPECT_EQ(one, two) << "seed " << seed;
        EXPECT_EQ(two, eight) << "seed " << seed;
    }
}

TEST(RecoveryDeterminism, EmptyFaultPlanIsByteIdenticalToNoPlan)
{
    std::string without, with;
    chaosRun("", 77, &without);
    // "seed=3" alone injects nothing: contractually identical to no
    // plan at all.
    chaosRun("seed=3", 77, &with);
    EXPECT_EQ(without, with);
}

}  // namespace
}  // namespace crophe::serve
