#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "graph/params.h"
#include "serve/traffic.h"

namespace crophe::serve {
namespace {

Catalog
microCatalog()
{
    return buildCatalog(graph::paramsArk(), {"hmult", "hrot", "matvec"});
}

TenantSpec
tenant(const std::string &name, double rate,
       std::vector<double> mix = {1.0, 1.0, 1.0})
{
    TenantSpec t;
    t.name = name;
    t.rate = rate;
    t.slaSeconds = 0.05;
    t.mix = std::move(mix);
    return t;
}

TrafficSpec
spec(double duration, u64 seed, std::vector<TenantSpec> tenants)
{
    TrafficSpec s;
    s.durationSeconds = duration;
    s.seed = seed;
    s.tenants = std::move(tenants);
    return s;
}

TEST(Traffic, SameSeedIsBitIdentical)
{
    auto cat = microCatalog();
    auto s = spec(2.0, 99, {tenant("a", 40.0), tenant("b", 25.0)});
    auto r1 = generateTraffic(s, cat);
    auto r2 = generateTraffic(s, cat);
    ASSERT_EQ(r1.size(), r2.size());
    ASSERT_GT(r1.size(), 0u);
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].id, r2[i].id);
        EXPECT_EQ(r1[i].tenant, r2[i].tenant);
        EXPECT_EQ(r1[i].templateIdx, r2[i].templateIdx);
        EXPECT_EQ(r1[i].arrival, r2[i].arrival);
        EXPECT_EQ(r1[i].deadline, r2[i].deadline);
    }
}

TEST(Traffic, DifferentSeedsDiffer)
{
    auto cat = microCatalog();
    auto a = generateTraffic(spec(2.0, 1, {tenant("a", 50.0)}), cat);
    auto b = generateTraffic(spec(2.0, 2, {tenant("a", 50.0)}), cat);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].arrival != b[i].arrival ||
                  a[i].templateIdx != b[i].templateIdx;
    EXPECT_TRUE(differs);
}

TEST(Traffic, TenantStreamsAreIndependent)
{
    // Adding a second tenant must not perturb the first one's stream.
    auto cat = microCatalog();
    auto solo = generateTraffic(spec(2.0, 7, {tenant("a", 30.0)}), cat);
    auto duo = generateTraffic(
        spec(2.0, 7, {tenant("a", 30.0), tenant("b", 80.0)}), cat);
    std::vector<Request> fromDuo;
    for (const auto &r : duo)
        if (r.tenant == 0)
            fromDuo.push_back(r);
    ASSERT_EQ(solo.size(), fromDuo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
        EXPECT_EQ(solo[i].arrival, fromDuo[i].arrival);
        EXPECT_EQ(solo[i].templateIdx, fromDuo[i].templateIdx);
    }
}

TEST(Traffic, FixedProcessIsEvenlySpaced)
{
    auto cat = microCatalog();
    auto t = tenant("a", 10.0);
    t.process = ArrivalProcess::Fixed;
    auto r = generateTraffic(spec(1.0, 3, {t}), cat);
    ASSERT_EQ(r.size(), 9u);  // 0.1 .. 0.9
    for (std::size_t i = 0; i < r.size(); ++i)
        EXPECT_NEAR(r[i].arrival, 0.1 * (i + 1), 1e-12);
}

TEST(Traffic, IdsFollowMergedArrivalOrder)
{
    auto cat = microCatalog();
    auto r = generateTraffic(
        spec(1.0, 5, {tenant("a", 60.0), tenant("b", 60.0)}), cat);
    ASSERT_GT(r.size(), 10u);
    for (std::size_t i = 0; i < r.size(); ++i) {
        EXPECT_EQ(r[i].id, i);
        if (i > 0)
            EXPECT_GE(r[i].arrival, r[i - 1].arrival);
        EXPECT_EQ(r[i].deadline, r[i].arrival + 0.05);
    }
}

TEST(Traffic, ZeroWeightTemplateIsNeverDrawn)
{
    auto cat = microCatalog();
    auto r = generateTraffic(
        spec(4.0, 11, {tenant("a", 100.0, {1.0, 0.0, 2.0})}), cat);
    ASSERT_GT(r.size(), 100u);
    bool sawFirst = false, sawLast = false;
    for (const auto &req : r) {
        EXPECT_NE(req.templateIdx, 1u);
        sawFirst |= req.templateIdx == 0;
        sawLast |= req.templateIdx == 2;
    }
    EXPECT_TRUE(sawFirst);
    EXPECT_TRUE(sawLast);
}

TEST(Traffic, RejectsInvalidSpecs)
{
    auto cat = microCatalog();
    EXPECT_THROW(generateTraffic(spec(1.0, 1, {}), cat), RecoverableError);
    EXPECT_THROW(
        generateTraffic(spec(0.0, 1, {tenant("a", 1.0)}), cat),
        RecoverableError);
    EXPECT_THROW(
        generateTraffic(spec(1.0, 1, {tenant("a", 0.0)}), cat),
        RecoverableError);
    EXPECT_THROW(generateTraffic(spec(1.0, 1, {tenant("a", 1.0, {1.0})}),
                                 cat),
                 RecoverableError);
    EXPECT_THROW(
        generateTraffic(spec(1.0, 1, {tenant("a", 1.0, {0.0, 0.0, 0.0})}),
                        cat),
        RecoverableError);
}

TEST(Catalog, RejectsUnknownNamesAndMixes)
{
    EXPECT_THROW(buildCatalog(graph::paramsArk(), {"nope"}),
                 RecoverableError);
    EXPECT_THROW(buildCatalog(graph::paramsArk(), {}), RecoverableError);
    EXPECT_THROW(mixByName("nope"), RecoverableError);
    auto mix = mixByName("micro");
    EXPECT_EQ(mix.templates.size(), mix.weights.size());
}

TEST(Catalog, TemplatesAreHashedAndSized)
{
    auto cat = microCatalog();
    ASSERT_EQ(cat.templates.size(), 3u);
    EXPECT_EQ(cat.indexOf("hrot"), 1u);
    EXPECT_THROW(cat.indexOf("nope"), RecoverableError);
    for (const auto &t : cat.templates) {
        EXPECT_NE(t.graphHash, 0u);
        EXPECT_GT(t.ops, 0u);
    }
    // Distinct templates must get distinct batching keys.
    EXPECT_NE(cat.templates[0].graphHash, cat.templates[1].graphHash);
    EXPECT_NE(cat.templates[1].graphHash, cat.templates[2].graphHash);
}

}  // namespace
}  // namespace crophe::serve
