#include <gtest/gtest.h>

#include "serve/admission.h"

namespace crophe::serve {
namespace {

Request
request(u64 id, u32 tenant, double arrival)
{
    Request r;
    r.id = id;
    r.tenant = tenant;
    r.arrival = arrival;
    r.deadline = arrival + 0.05;
    return r;
}

TenantSpec
tenant(double bucketRate, double bucketBurst, double sla = 0.05)
{
    TenantSpec t;
    t.name = "t";
    t.slaSeconds = sla;
    t.bucketRate = bucketRate;
    t.bucketBurst = bucketBurst;
    return t;
}

TEST(TokenBucket, RefillMathIsExact)
{
    TokenBucket b;
    b.rate = 2.0;
    b.burst = 3.0;
    b.reset(0.0);
    EXPECT_TRUE(b.available(0.0));
    b.take();
    b.take();
    b.take();
    EXPECT_FALSE(b.available(0.0));
    // 0.25 s at 2 tokens/s accrues half a token.
    EXPECT_FALSE(b.available(0.25));
    EXPECT_TRUE(b.available(0.5));
    b.take();
    EXPECT_FALSE(b.available(0.5));
    // Refill clamps at burst: after a long idle only 3 tokens exist.
    EXPECT_TRUE(b.available(100.0));
    b.take();
    b.take();
    b.take();
    EXPECT_FALSE(b.available(100.0));
}

TEST(TokenBucket, ZeroRateIsUnlimited)
{
    TokenBucket b;
    b.rate = 0.0;
    b.burst = 1.0;
    b.reset(0.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(b.available(0.0));
        b.take();
    }
}

TEST(Admission, ThrottlesPastTheBucket)
{
    AdmissionOptions opt;
    opt.shedFactor = 0.0;
    AdmissionController ac(opt, {tenant(2.0, 1.0)});
    EXPECT_FALSE(ac.decide(request(0, 0, 0.1), 0.1, 0.0, 0).has_value());
    auto r = ac.decide(request(1, 0, 0.2), 0.2, 0.0, 1);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, RejectReason::Throttled);
    // 2 tokens/s: a full token is back 0.5 s after the last take.
    EXPECT_FALSE(ac.decide(request(2, 0, 0.6), 0.6, 0.0, 1).has_value());
}

TEST(Admission, ShedsOnProjectedWait)
{
    AdmissionOptions opt;
    opt.shedFactor = 2.0;
    AdmissionController ac(opt, {tenant(0.0, 1.0, /*sla=*/0.05)});
    // Boundary is strict: exactly factor x SLA still admits.
    EXPECT_FALSE(ac.decide(request(0, 0, 0.0), 0.0, 0.10, 5).has_value());
    auto r = ac.decide(request(1, 0, 0.0), 0.0, 0.11, 5);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, RejectReason::Overload);
}

TEST(Admission, CapsQueueDepth)
{
    AdmissionOptions opt;
    opt.shedFactor = 0.0;
    opt.maxQueue = 2;
    AdmissionController ac(opt, {tenant(0.0, 1.0)});
    EXPECT_FALSE(ac.decide(request(0, 0, 0.0), 0.0, 0.0, 1).has_value());
    auto r = ac.decide(request(1, 0, 0.0), 0.0, 0.0, 2);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, RejectReason::Overload);
}

TEST(Admission, OverloadRejectionDoesNotSpendTheToken)
{
    AdmissionOptions opt;
    opt.shedFactor = 1.0;
    AdmissionController ac(opt, {tenant(0.0001, 1.0, 0.05)});
    // Bucket holds exactly one token (negligible refill). An overload
    // rejection must leave it for the next attempt.
    auto r = ac.decide(request(0, 0, 0.0), 0.0, 1.0, 9);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, RejectReason::Overload);
    EXPECT_FALSE(ac.decide(request(1, 0, 0.0), 0.0, 0.0, 0).has_value());
    // Now the token is gone.
    auto r2 = ac.decide(request(2, 0, 0.0), 0.0, 0.0, 0);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(*r2, RejectReason::Throttled);
}

TEST(Admission, AdmitOrThrowCarriesTypedContext)
{
    AdmissionOptions opt;
    opt.shedFactor = 1.0;
    AdmissionController ac(opt, {tenant(0.0, 1.0, 0.05), tenant(0.0, 1.0)});
    EXPECT_NO_THROW(ac.admitOrThrow(request(3, 1, 0.2), 0.2, 0.0, 0));
    try {
        ac.admitOrThrow(request(7, 1, 0.5), 0.5, 10.0, 3);
        FAIL() << "expected AdmissionRejected";
    } catch (const AdmissionRejected &e) {
        EXPECT_EQ(e.reason, RejectReason::Overload);
        EXPECT_EQ(e.requestId, 7u);
        EXPECT_EQ(e.tenant, 1u);
        EXPECT_NE(std::string(e.what()).find("overload"),
                  std::string::npos);
    }
    // The typed rejection is a RecoverableError, so harness boundaries
    // that already catch RecoverableError keep working.
    EXPECT_THROW(ac.admitOrThrow(request(8, 0, 0.5), 0.5, 10.0, 3),
                 RecoverableError);
}

}  // namespace
}  // namespace crophe::serve
