#include <gtest/gtest.h>

#include "common/error.h"
#include "common/parallel.h"
#include "graph/params.h"
#include "graph/workloads.h"
#include "hw/config.h"
#include "plan/plan_cache.h"
#include "pod/pod.h"
#include "sched/scheduler.h"

namespace crophe::pod {
namespace {

graph::Workload
microWorkload(u64 reps = 4)
{
    auto p = graph::paramsArk();
    graph::Workload w;
    w.name = "micro";
    w.params = p;
    graph::WorkloadSegment seg;
    seg.name = "hmult";
    seg.graph = graph::buildHMult(p, 10);
    seg.repetitions = reps;
    w.segments.push_back(std::move(seg));
    return w;
}

PodConfig
podOf(u32 chips, u32 dead = 0)
{
    PodConfig pc;
    pc.chips = chips;
    pc.deadChips = dead;
    return pc;
}

TEST(PodConfig, ValidateRejectsNonsensicalShapes)
{
    EXPECT_THROW(validatePod(podOf(0)), RecoverableError);
    EXPECT_THROW(validatePod(podOf(2, 2)), RecoverableError);
    EXPECT_THROW(validatePod(podOf(1, 3)), RecoverableError);
    PodConfig zeroBw = podOf(2);
    zeroBw.linkGBs = 0.0;
    EXPECT_THROW(validatePod(zeroBw), RecoverableError);
    PodConfig negLat = podOf(2);
    negLat.linkLatencyCycles = -1.0;
    EXPECT_THROW(validatePod(negLat), RecoverableError);
    EXPECT_NO_THROW(validatePod(podOf(1)));
    EXPECT_NO_THROW(validatePod(podOf(8, 3)));
}

TEST(PodConfig, DigestCoversEveryParameter)
{
    const PodConfig base = podOf(2);
    EXPECT_EQ(podDigest(base), podDigest(podOf(2)));
    EXPECT_NE(podDigest(base), podDigest(podOf(4)));
    PodConfig bw = base;
    bw.linkGBs = 300.0;
    EXPECT_NE(podDigest(base), podDigest(bw));
    PodConfig lat = base;
    lat.linkLatencyCycles = 100.0;
    EXPECT_NE(podDigest(base), podDigest(lat));
    EXPECT_NE(podDigest(podOf(4)), podDigest(podOf(4, 1)));
}

TEST(PodConfig, LinkFractionValidatesAndSaltsTheDigest)
{
    // Degraded links (DESIGN.md §14) must stay in (0, 1].
    PodConfig bad = podOf(2);
    bad.linkFraction = 0.0;
    EXPECT_THROW(validatePod(bad), RecoverableError);
    bad.linkFraction = 1.5;
    EXPECT_THROW(validatePod(bad), RecoverableError);
    bad.linkFraction = -0.5;
    EXPECT_THROW(validatePod(bad), RecoverableError);

    // Healthy links (exactly 1.0) leave the digest untouched — the
    // backward-compatibility contract for every pre-recovery plan cache.
    PodConfig healthy = podOf(2);
    healthy.linkFraction = 1.0;
    EXPECT_EQ(podDigest(healthy), podDigest(podOf(2)));
    // A degraded fraction digests differently (no plan cross-serving).
    PodConfig degraded = podOf(2);
    degraded.linkFraction = 0.5;
    EXPECT_NO_THROW(validatePod(degraded));
    EXPECT_NE(podDigest(degraded), podDigest(healthy));
    PodConfig degradedMore = podOf(2);
    degradedMore.linkFraction = 0.25;
    EXPECT_NE(podDigest(degradedMore), podDigest(degraded));
}

TEST(PodConfig, OneChipPodSharesTheSingleChipPlanNamespace)
{
    auto cfg = hw::configCrophe64();
    // A trivial pod is contractually the same machine: same digest.
    EXPECT_EQ(hw::configDigest(chipConfigForPod(podOf(1), cfg)),
              hw::configDigest(cfg));
    // Real pods are salted — including a degraded pod with one survivor,
    // which schedules around dead neighbors and must not share plans
    // with the genuinely single-chip machine.
    EXPECT_NE(hw::configDigest(chipConfigForPod(podOf(2), cfg)),
              hw::configDigest(cfg));
    EXPECT_NE(hw::configDigest(chipConfigForPod(podOf(2, 1), cfg)),
              hw::configDigest(cfg));
    EXPECT_NE(hw::configDigest(chipConfigForPod(podOf(2), cfg)),
              hw::configDigest(chipConfigForPod(podOf(4), cfg)));
}

TEST(Pod, PlanCacheNeverCrossServesPodAndSingleChipPlans)
{
    auto cfg = hw::configCrophe64();
    auto g = graph::buildHMult(graph::paramsArk(), 10);
    plan::PlanCache cache;
    sched::SchedOptions so;
    so.planCache = &cache;

    sched::scheduleGraph(g, cfg, so);
    EXPECT_EQ(cache.stats().misses, 1u);

    // Same graph, 2-chip pod config: a different key, so a miss — the
    // single-chip plan is never served to the pod.
    auto podCfg = chipConfigForPod(podOf(2), cfg);
    sched::scheduleGraph(g, podCfg, so);
    EXPECT_EQ(cache.stats().misses, 2u);

    // Both namespaces replay as hits.
    const u64 hitsBefore = cache.stats().hits;
    sched::scheduleGraph(g, cfg, so);
    sched::scheduleGraph(g, podCfg, so);
    EXPECT_EQ(cache.stats().hits, hitsBefore + 2);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Pod, ShardsSegmentsAndChargesInterchipTraffic)
{
    auto w = microWorkload();
    sched::SchedOptions so;
    auto pr = schedulePodWorkload(w, hw::configCrophe64(), podOf(2), so);
    ASSERT_EQ(pr.perSegment.size(), 1u);
    const auto &seg = pr.perSegment[0];
    EXPECT_EQ(seg.stages, 2u);
    ASSERT_EQ(seg.stageChip.size(), 2u);
    EXPECT_NE(seg.stageChip[0], seg.stageChip[1]);
    EXPECT_LT(seg.stageChip[0], 2u);
    EXPECT_LT(seg.stageChip[1], 2u);
    EXPECT_GT(pr.seconds, 0.0);
    EXPECT_GT(pr.interchipWords, 0u);
    EXPECT_GT(pr.transfers, 0u);
    // The steady-state bound can never exceed the cold makespan.
    EXPECT_LE(pr.warmSeconds, pr.seconds * (1.0 + 1e-12));
}

TEST(Pod, SingleChipPodHasNoInterchipTraffic)
{
    auto w = microWorkload();
    sched::SchedOptions so;
    auto pr = schedulePodWorkload(w, hw::configCrophe64(), podOf(1), so);
    EXPECT_EQ(pr.interchipWords, 0u);
    EXPECT_EQ(pr.transfers, 0u);
    ASSERT_EQ(pr.perSegment.size(), 1u);
    EXPECT_EQ(pr.perSegment[0].stages, 1u);
    EXPECT_GT(pr.seconds, 0.0);
}

TEST(Pod, DeadChipsRepartitionOntoSurvivors)
{
    auto w = microWorkload();
    sched::SchedOptions so;
    // 4-chip pod with 2 dead: the graph repartitions across the two
    // surviving physical chips (the lowest-numbered ids, by convention).
    auto pr = schedulePodWorkload(w, hw::configCrophe64(), podOf(4, 2),
                                  so);
    ASSERT_EQ(pr.perSegment.size(), 1u);
    EXPECT_EQ(pr.perSegment[0].stages, 2u);
    for (u32 chip : pr.perSegment[0].stageChip)
        EXPECT_LT(chip, 2u);
    EXPECT_GT(pr.seconds, 0.0);
    // The degraded pod digests differently from both the healthy 4-chip
    // pod and a native 2-chip pod, so none of the three share plans.
    EXPECT_NE(podDigest(podOf(4, 2)), podDigest(podOf(4)));
    EXPECT_NE(podDigest(podOf(4, 2)), podDigest(podOf(2)));
}

TEST(Pod, ResultsAreByteIdenticalAcrossThreadCounts)
{
    auto w = microWorkload();
    auto run = [&](u32 threads) {
        ThreadPool::setGlobalThreads(threads);
        sched::SchedOptions so;
        return schedulePodWorkload(w, hw::configCrophe64(), podOf(2), so);
    };
    auto r1 = run(1);
    auto r8 = run(8);
    ThreadPool::setGlobalThreads(0);  // back to the hardware default
    EXPECT_EQ(r1.seconds, r8.seconds);
    EXPECT_EQ(r1.warmSeconds, r8.warmSeconds);
    EXPECT_EQ(r1.interchipWords, r8.interchipWords);
    EXPECT_EQ(r1.transfers, r8.transfers);
    ASSERT_EQ(r1.perSegment.size(), r8.perSegment.size());
    EXPECT_EQ(r1.perSegment[0].stageChip, r8.perSegment[0].stageChip);
    EXPECT_EQ(r1.perSegment[0].cycles, r8.perSegment[0].cycles);
}

}  // namespace
}  // namespace crophe::pod
