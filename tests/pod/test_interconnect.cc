#include <gtest/gtest.h>

#include "hw/config.h"
#include "sim/interconnect.h"

namespace crophe::sim {
namespace {

InterconnectConfig
ring(u32 chips, double gbs = 100.0, double latency = 0.0)
{
    InterconnectConfig ic;
    ic.chips = chips;
    ic.linkGBs = gbs;
    ic.linkLatencyCycles = latency;
    return ic;
}

/** Cycles one directed link needs to serialize @p words. */
double
serializeCycles(const hw::HwConfig &chip, double gbs, u64 words)
{
    const double words_per_cycle = gbs / (chip.wordBytes() * chip.freqGhz);
    return static_cast<double>(words) / words_per_cycle;
}

TEST(Interconnect, RingHopsTakeShorterDirection)
{
    EXPECT_EQ(Interconnect::ringHops(0, 0, 1), 0u);
    EXPECT_EQ(Interconnect::ringHops(0, 1, 2), 1u);
    EXPECT_EQ(Interconnect::ringHops(0, 1, 4), 1u);
    EXPECT_EQ(Interconnect::ringHops(0, 2, 4), 2u);
    EXPECT_EQ(Interconnect::ringHops(0, 3, 4), 1u);  // counter-clockwise
    EXPECT_EQ(Interconnect::ringHops(3, 0, 4), 1u);
    EXPECT_EQ(Interconnect::ringHops(1, 6, 8), 3u);
    EXPECT_EQ(Interconnect::ringHops(2, 2, 8), 0u);
}

TEST(Interconnect, TransferPaysLatencyAndSerializationPerHop)
{
    auto chip = hw::configCrophe64();
    const u64 words = 1u << 20;
    const double d = serializeCycles(chip, 100.0, words);

    // One hop: fixed latency, then the link streams the payload.
    Interconnect one(ring(4, 100.0, 500.0), chip);
    EXPECT_DOUBLE_EQ(one.transfer(0.0, 0, 1, words), 500.0 + d);

    // Two hops store-and-forward: latency + serialization on each link.
    Interconnect two(ring(4, 100.0, 500.0), chip);
    EXPECT_DOUBLE_EQ(two.transfer(0.0, 0, 2, words),
                     2.0 * 500.0 + 2.0 * d);

    // Same-chip transfers are free and keep the ready time.
    EXPECT_DOUBLE_EQ(two.transfer(7.0, 2, 2, words), 7.0);
    EXPECT_EQ(two.transfers(), 1u);  // the free one is not a transfer
    EXPECT_EQ(two.totalWords(), words);
    EXPECT_EQ(two.totalHopWords(), 2 * words);
}

TEST(Interconnect, SharedLinkContentionSerializesDisjointLinksDoNot)
{
    auto chip = hw::configCrophe64();
    const u64 words = 1u << 18;
    const double d = serializeCycles(chip, 100.0, words);

    Interconnect net(ring(4), chip);
    const double a = net.transfer(0.0, 0, 1, words);
    const double b = net.transfer(0.0, 0, 1, words);  // same link: queues
    const double c = net.transfer(0.0, 2, 3, words);  // disjoint link
    EXPECT_DOUBLE_EQ(a, d);
    EXPECT_DOUBLE_EQ(b, 2.0 * d);
    EXPECT_DOUBLE_EQ(c, d);
    EXPECT_EQ(net.transfers(), 3u);
    EXPECT_DOUBLE_EQ(net.maxLinkBusyCycles(), 2.0 * d);
    EXPECT_DOUBLE_EQ(net.busyCycles(), 3.0 * d);
}

TEST(Interconnect, EqualDistanceTiesRouteClockwise)
{
    auto chip = hw::configCrophe64();
    const u64 words = 1u << 18;
    const double d = serializeCycles(chip, 100.0, words);

    // chips = 4, 0 -> 2: cw == ccw == 2 hops; the tie must route
    // clockwise through links c0->c1 and c1->c2.
    Interconnect net(ring(4), chip);
    net.transfer(0.0, 0, 2, words);
    // A 0 -> 1 transfer contends with the tied route's first link...
    EXPECT_DOUBLE_EQ(net.transfer(0.0, 0, 1, words), 2.0 * d);
    // ...while the counter-clockwise 0 -> 3 link is untouched.
    EXPECT_DOUBLE_EQ(net.transfer(0.0, 0, 3, words), d);
}

}  // namespace
}  // namespace crophe::sim
