#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"
#include "graph/params.h"
#include "graph/workloads.h"
#include "hw/config.h"
#include "pod/partition.h"

namespace crophe::pod {
namespace {

using graph::Graph;
using graph::OpId;

/** input -> muls ... -> output chain of @p muls elementwise ops. */
Graph
chainGraph(u32 muls, u64 n = 1u << 14, u32 limbs = 8)
{
    Graph g;
    OpId prev = g.add(graph::makeInput(n, limbs));
    for (u32 i = 0; i < muls; ++i) {
        OpId c = g.add(graph::makeEwMulConst(n, limbs));
        g.connect(prev, c);
        prev = c;
    }
    OpId out = g.add(graph::makeOutput(n, limbs));
    g.connect(prev, out);
    return g;
}

/** The invariants every partition must satisfy (see partition.h). */
void
checkInvariants(const Graph &g, const PartitionResult &r, u32 parts)
{
    ASSERT_EQ(r.partOf.size(), g.size());
    ASSERT_EQ(r.parts.size(), parts);
    std::vector<u32> seen(g.size(), 0);
    for (u32 p = 0; p < parts; ++p) {
        EXPECT_FALSE(r.parts[p].empty()) << "stage " << p << " empty";
        for (OpId id : r.parts[p]) {
            EXPECT_EQ(r.partOf[id], p);
            ++seen[id];
        }
    }
    for (OpId id = 0; id < g.size(); ++id) {
        EXPECT_EQ(seen[id], 1u) << "op " << id << " covered once";
        for (OpId c : g.consumers(id))
            EXPECT_LE(r.partOf[id], r.partOf[c])
                << "edge " << id << "->" << c << " must point forward";
    }
}

TEST(Partition, SinglePartIsTrivialWithZeroCut)
{
    Graph g = chainGraph(6);
    auto r = partitionGraph(g, 1, hw::configCrophe64());
    checkInvariants(g, r, 1);
    EXPECT_EQ(r.cutWords, 0u);
    EXPECT_EQ(r.cutHopWords, 0u);
    EXPECT_FALSE(r.sramOverflow);
}

TEST(Partition, ChainSplitsIntoContiguousBalancedStages)
{
    Graph g = chainGraph(16);
    auto r = partitionGraph(g, 2, hw::configCrophe64());
    checkInvariants(g, r, 2);
    // A chain cut once crosses exactly one edge; both directions of a
    // 2-ring are one hop, so the hop-weighted cut equals the plain cut.
    EXPECT_GT(r.cutWords, 0u);
    EXPECT_EQ(r.cutHopWords, r.cutWords);
    // Stages are contiguous runs of the chain.
    for (OpId id = 0; id + 1 < g.size(); ++id)
        EXPECT_LE(r.partOf[id], r.partOf[id + 1]);
    // Balanced within the tolerance: neither stage hogs the chain.
    EXPECT_GE(r.parts[0].size(), 4u);
    EXPECT_GE(r.parts[1].size(), 4u);
}

TEST(Partition, OneOpPerStageAtMaximumParts)
{
    Graph g = chainGraph(2);  // input + 2 muls + output = 4 ops
    auto r = partitionGraph(g, 4, hw::configCrophe64());
    checkInvariants(g, r, 4);
    for (const auto &stage : r.parts)
        EXPECT_EQ(stage.size(), 1u);
}

TEST(Partition, RealGraphSatisfiesInvariantsAtEveryWidth)
{
    auto p = graph::paramsArk();
    Graph g = graph::buildHMult(p, 10);
    for (u32 parts : {2u, 3u, 4u}) {
        auto r = partitionGraph(g, parts, hw::configCrophe64());
        checkInvariants(g, r, parts);
        EXPECT_GT(r.cutWords, 0u) << parts << " stages";
        EXPECT_GE(r.cutHopWords, r.cutWords);
    }
}

TEST(Partition, RefinementNeverWorsensTheSeedObjective)
{
    auto p = graph::paramsArk();
    Graph g = graph::buildPtMatVecMult(p, 10, 4, 2, graph::RotMode::Hybrid,
                                       4);
    PartitionOptions seedOnly;
    seedOnly.refinePasses = 0;
    auto seed = partitionGraph(g, 4, hw::configCrophe64(), seedOnly);
    auto refined = partitionGraph(g, 4, hw::configCrophe64());
    EXPECT_LE(refined.cutHopWords, seed.cutHopWords);
}

TEST(Partition, ByteIdenticalAcrossThreadCounts)
{
    auto p = graph::paramsArk();
    Graph g = graph::buildPtMatVecMult(p, 10, 4, 2, graph::RotMode::Hybrid,
                                       4);
    auto run = [&](u32 threads) {
        ThreadPool::setGlobalThreads(threads);
        return partitionGraph(g, 4, hw::configCrophe64());
    };
    auto r1 = run(1);
    auto r2 = run(2);
    auto r8 = run(8);
    ThreadPool::setGlobalThreads(0);  // back to the hardware default
    EXPECT_EQ(r1.partOf, r2.partOf);
    EXPECT_EQ(r1.partOf, r8.partOf);
    EXPECT_EQ(r1.cutHopWords, r8.cutHopWords);
    EXPECT_EQ(r1.moves, r8.moves);
}

}  // namespace
}  // namespace crophe::pod
