#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "fhe/bconv.h"
#include "fhe/rns.h"
#include "graph/workloads.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "telemetry/search_telemetry.h"
#include "telemetry/stats_registry.h"
#include "tests/fhe/test_util.h"

/**
 * @file
 * The parallel layer's contract is bit-identity: for any thread count the
 * ciphertexts, schedules, and stats dumps must equal the 1-thread result.
 * These tests run the real pipelines at CROPHE_THREADS-equivalent 1/2/8
 * and compare byte for byte.
 */

namespace crophe {
namespace {

using fhe::BaseConverter;
using fhe::FheContext;
using fhe::Rep;
using fhe::RnsPoly;
using fhe::test::smallContext;

class ParallelIdentityTest : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::setGlobalThreads(0); }
};

const u32 kThreadCounts[] = {1, 2, 8};

/** All limb data of a poly, flattened for exact comparison. */
std::vector<u64>
flatten(const RnsPoly &p)
{
    std::vector<u64> out;
    for (u32 i = 0; i < p.limbCount(); ++i)
        out.insert(out.end(), p.limb(i).begin(), p.limb(i).end());
    return out;
}

TEST_F(ParallelIdentityTest, NttRoundTripAndCrossThreadIdentity)
{
    const FheContext &ctx = smallContext();
    std::vector<u64> eval_ref, coeff_ref;
    for (u32 threads : kThreadCounts) {
        ThreadPool::setGlobalThreads(threads);
        // Identical RNG seed -> identical input for every thread count.
        Rng rng(1234);
        RnsPoly p(ctx, ctx.qpBasis(ctx.maxLevel()), Rep::Coeff);
        p.uniformRandom(rng);
        auto original = flatten(p);

        p.toEval();
        auto eval = flatten(p);
        p.toCoeff();
        auto back = flatten(p);

        EXPECT_EQ(back, original) << "NTT round trip at " << threads;
        if (threads == 1) {
            eval_ref = eval;
            coeff_ref = back;
        } else {
            EXPECT_EQ(eval, eval_ref) << threads << " threads (eval)";
            EXPECT_EQ(back, coeff_ref) << threads << " threads (coeff)";
        }
    }
}

TEST_F(ParallelIdentityTest, RandomizedNttRoundTripProperty)
{
    const FheContext &ctx = smallContext();
    ThreadPool::setGlobalThreads(8);
    for (u64 seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        RnsPoly p(ctx, ctx.qBasis(ctx.maxLevel()), Rep::Coeff);
        p.uniformRandom(rng);
        RnsPoly q = p;
        q.toEval();
        q.toCoeff();
        EXPECT_EQ(flatten(q), flatten(p)) << "seed " << seed;
    }
}

TEST_F(ParallelIdentityTest, BConvRoundTripAndCrossThreadIdentity)
{
    const FheContext &ctx = smallContext();
    std::vector<u64> ref;
    for (u32 threads : kThreadCounts) {
        ThreadPool::setGlobalThreads(threads);
        Rng rng(99);
        // Values below q0 are exactly representable in both bases, so
        // q -> p -> q must reproduce the input limb for limb.
        RnsPoly in(ctx, {0, 1}, Rep::Coeff);
        for (u64 c = 0; c < in.n(); ++c) {
            u64 v = rng.nextBounded(1u << 30);
            in.limb(0)[c] = in.mod(0).reduce64(v);
            in.limb(1)[c] = in.mod(1).reduce64(v);
        }
        BaseConverter fwd(ctx, {0, 1}, ctx.pBasis());
        BaseConverter bwd(ctx, ctx.pBasis(), {0, 1});
        RnsPoly mid = fwd.convert(in);
        RnsPoly out = bwd.convert(mid);
        EXPECT_EQ(flatten(out), flatten(in)) << threads << " threads";

        auto bytes = flatten(mid);
        if (threads == 1)
            ref = bytes;
        else
            EXPECT_EQ(bytes, ref) << threads << " threads";
    }
}

/** Schedule + simulate the bootstrap workload; return every output that
 *  must be stable: schedule stats, sim stats dump, and telemetry JSON. */
std::string
bootstrapFingerprint()
{
    graph::FheParams p = graph::paramsArk();
    graph::Workload w = graph::buildWorkload("bootstrap", p, {});
    auto cfg = hw::configCrophe64();

    sched::SchedOptions opt;
    opt.crossOpDataflow = true;
    opt.nttDecomp = true;
    opt.maxGroupOps = 8;
    telemetry::SearchTelemetry st;
    opt.search = &st;

    sched::WorkloadResult res = sched::scheduleWorkload(w, cfg, opt);

    std::ostringstream os;
    os.precision(17);
    os << res.stats.cycles << "|" << res.stats.dramWords << "|"
       << res.stats.sramWords << "|" << res.stats.nocWords << "|"
       << res.stats.flops << "|" << res.stats.auxDramWords << "\n";
    for (const auto &[name, seg] : res.perSegment)
        os << name << ":" << seg.cycles << "|" << seg.dramWords << "\n";

    // Simulator stats dump (drives the DRAM/SRAM/NoC servers and the
    // event queue) for every segment, accumulated into one registry.
    telemetry::StatsRegistry reg;
    for (const auto &seg : w.segments) {
        sched::Schedule s = sched::scheduleGraph(seg.graph, cfg, opt);
        sim::SimStats ss = sim::simulateSchedule(s, cfg);
        ss.accumulateInto(reg);
    }
    reg.dumpText(os);

    // Canonical search-telemetry curve.
    st.writeCurveJson(os);
    return os.str();
}

TEST_F(ParallelIdentityTest, BootstrapScheduleAndStatsDumpsAreByteEqual)
{
    std::string ref;
    for (u32 threads : kThreadCounts) {
        ThreadPool::setGlobalThreads(threads);
        std::string fp = bootstrapFingerprint();
        if (threads == 1)
            ref = fp;
        else
            EXPECT_EQ(fp, ref) << threads << " threads";
    }
    EXPECT_FALSE(ref.empty());
}

}  // namespace
}  // namespace crophe
