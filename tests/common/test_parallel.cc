#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace crophe {
namespace {

/** Restore the global pool configuration after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::setGlobalThreads(0); }
};

TEST_F(ParallelTest, PoolRunsEveryChunkExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    constexpr u32 kChunks = 100;
    std::vector<std::atomic<u32>> hits(kChunks);
    pool.run(kChunks, [&](u32 c) { hits[c].fetch_add(1); });
    for (u32 c = 0; c < kChunks; ++c)
        EXPECT_EQ(hits[c].load(), 1u) << "chunk " << c;
}

TEST_F(ParallelTest, ZeroAndOneChunkAreHandled)
{
    ThreadPool pool(3);
    u32 calls = 0;
    pool.run(0, [&](u32) { ++calls; });
    EXPECT_EQ(calls, 0u);
    pool.run(1, [&](u32 c) {
        EXPECT_EQ(c, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1u);
}

TEST_F(ParallelTest, ParallelForCoversRangeOnceAnyThreadCount)
{
    for (u32 threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        constexpr u64 kN = 10000;
        std::vector<u32> hits(kN, 0);
        parallelFor(17, kN, [&](u64 i) { hits[i] += 1; });
        for (u64 i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i], i >= 17 ? 1u : 0u) << "i=" << i;
    }
}

TEST_F(ParallelTest, ParallelForRangeChunksAreDisjointAndOrdered)
{
    ThreadPool::setGlobalThreads(8);
    constexpr u64 kN = 1000;
    std::vector<u32> hits(kN, 0);
    parallelForRange(0, kN, [&](u64 b, u64 e) {
        ASSERT_LT(b, e);
        for (u64 i = b; i < e; ++i)
            hits[i] += 1;
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0u), kN);
}

TEST_F(ParallelTest, ResultsBitIdenticalAcrossThreadCounts)
{
    constexpr u64 kN = 4096;
    auto compute = [&](u32 threads) {
        ThreadPool::setGlobalThreads(threads);
        std::vector<double> out(kN);
        parallelFor(0, kN, [&](u64 i) {
            double x = static_cast<double>(i) * 0.3183098861837907;
            out[i] = x * x + 1.0 / (x + 1.0);
        });
        return out;
    };
    auto serial = compute(1);
    for (u32 threads : {2u, 3u, 8u})
        EXPECT_EQ(compute(threads), serial) << threads << " threads";
}

TEST_F(ParallelTest, LowestIndexExceptionPropagates)
{
    ThreadPool::setGlobalThreads(4);
    for (int repeat = 0; repeat < 20; ++repeat) {
        std::atomic<u32> ran{0};
        try {
            parallelFor(0, 16, [&](u64 i) {
                ran.fetch_add(1);
                if (i == 3 || i == 7)
                    throw std::runtime_error("boom " + std::to_string(i));
            });
            FAIL() << "exception was swallowed";
        } catch (const std::runtime_error &e) {
            // Deterministic choice: always the lowest failing index.
            EXPECT_STREQ(e.what(), "boom 3");
        }
        // Every index still ran (side effects match a clean run).
        EXPECT_EQ(ran.load(), 16u);
    }
}

TEST_F(ParallelTest, NestedParallelForCompletes)
{
    ThreadPool::setGlobalThreads(4);
    constexpr u64 kOuter = 12, kInner = 64;
    std::vector<std::vector<u64>> m(kOuter);
    parallelFor(0, kOuter, [&](u64 i) {
        m[i].assign(kInner, 0);
        parallelFor(0, kInner, [&](u64 j) { m[i][j] = i * 1000 + j; });
    });
    for (u64 i = 0; i < kOuter; ++i)
        for (u64 j = 0; j < kInner; ++j)
            EXPECT_EQ(m[i][j], i * 1000 + j);
}

TEST_F(ParallelTest, ParallelInvokeRunsAllTasks)
{
    ThreadPool::setGlobalThreads(4);
    std::vector<std::atomic<u32>> ran(5);
    std::vector<std::function<void()>> tasks;
    for (u32 t = 0; t < 5; ++t)
        tasks.push_back([&ran, t] { ran[t].fetch_add(1); });
    parallelInvoke(tasks);
    for (u32 t = 0; t < 5; ++t)
        EXPECT_EQ(ran[t].load(), 1u);
}

TEST_F(ParallelTest, GlobalThreadOverrideWinsOverEnv)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::globalThreads(), 3u);
    EXPECT_EQ(ThreadPool::global().threads(), 3u);
    ThreadPool::setGlobalThreads(0);  // back to env / hardware default
    EXPECT_GE(ThreadPool::globalThreads(), 1u);
}

}  // namespace
}  // namespace crophe
