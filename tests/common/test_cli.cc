#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/error.h"

namespace crophe::cli {
namespace {

/** Build a mutable argv from literals (FlagParser takes char**). */
class Argv
{
  public:
    explicit Argv(std::initializer_list<const char *> args)
    {
        for (const char *a : args)
            store_.emplace_back(a);
        for (std::string &s : store_)
            ptrs_.push_back(s.data());
    }
    int argc() { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> store_;
    std::vector<char *> ptrs_;
};

TEST(FlagParser, ParsesEveryRegisteredShape)
{
    std::string out_file;
    u32 count = 0;
    bool flag = false;
    FlagParser p("test harness");
    p.addString("--out", &out_file, "output file");
    p.addUint("--count", &count, "how many");
    p.addBool("--flag", &flag, "presence toggle");

    Argv a({"prog", "--count", "42", "--flag", "--out", "x.json"});
    EXPECT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(out_file, "x.json");
    EXPECT_EQ(count, 42u);
    EXPECT_TRUE(flag);
}

TEST(FlagParser, EmptyArgvParsesAndKeepsDefaults)
{
    std::string s = "default";
    FlagParser p;
    p.addString("--s", &s, "a string");
    Argv a({"prog"});
    EXPECT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(s, "default");
}

TEST(FlagParser, ParsesEqualsSyntaxForEveryValueKind)
{
    std::string out_file;
    u32 count = 0;
    double x = 0.0;
    FlagParser p;
    p.addString("--out", &out_file, "output file");
    p.addUint("--count", &count, "how many");
    p.addDouble("--x", &x, "a real");

    Argv a({"prog", "--count=42", "--out=x.json", "--x=2.5"});
    EXPECT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(out_file, "x.json");
    EXPECT_EQ(count, 42u);
    EXPECT_EQ(x, 2.5);
}

TEST(FlagParser, EqualsSyntaxMixesWithSpaceSyntax)
{
    u32 a_val = 0, b_val = 0;
    FlagParser p;
    p.addUint("--a", &a_val, "first");
    p.addUint("--b", &b_val, "second");
    Argv a({"prog", "--a=1", "--b", "2"});
    EXPECT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(a_val, 1u);
    EXPECT_EQ(b_val, 2u);
}

TEST(FlagParser, EqualsValueMayBeEmptyOrContainEquals)
{
    std::string out = "default", spec;
    FlagParser p;
    p.addString("--out", &out, "output file");
    p.addString("--spec", &spec, "key=value spec");
    Argv a({"prog", "--out=", "--spec=seed=7,rate=1e-3"});
    EXPECT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(out, "");
    EXPECT_EQ(spec, "seed=7,rate=1e-3");
}

TEST(FlagParser, BoolRejectsEqualsValue)
{
    FlagParser p;
    bool b = false;
    p.addBool("--quick", &b, "presence toggle");
    Argv a({"prog", "--quick=1"});
    EXPECT_FALSE(p.parse(a.argc(), a.argv()));
    EXPECT_FALSE(b);
}

TEST(FlagParser, EqualsSyntaxRejectsMalformedNumber)
{
    FlagParser p;
    u32 n = 0;
    double x = 0.0;
    p.addUint("--n", &n, "a number");
    p.addDouble("--x", &x, "a real");
    Argv a({"prog", "--n=12abc"});
    EXPECT_FALSE(p.parse(a.argc(), a.argv()));
    Argv b({"prog", "--x="});
    EXPECT_FALSE(p.parse(b.argc(), b.argv()));
}

TEST(FlagParser, RejectsUnknownFlag)
{
    FlagParser p;
    bool flag = false;
    p.addBool("--known", &flag, "known flag");
    Argv a({"prog", "--unknown"});
    EXPECT_FALSE(p.parse(a.argc(), a.argv()));
}

TEST(FlagParser, RejectsMissingValue)
{
    FlagParser p;
    std::string s;
    p.addString("--out", &s, "output file");
    Argv a({"prog", "--out"});
    EXPECT_FALSE(p.parse(a.argc(), a.argv()));
}

TEST(FlagParser, RejectsMalformedNumber)
{
    FlagParser p;
    u32 n = 0;
    p.addUint("--n", &n, "a number");
    Argv a({"prog", "--n", "12abc"});
    EXPECT_FALSE(p.parse(a.argc(), a.argv()));
}

TEST(FlagParser, RejectsPositionalArgument)
{
    FlagParser p;
    Argv a({"prog", "stray"});
    EXPECT_FALSE(p.parse(a.argc(), a.argv()));
}

TEST(FlagParser, UsageListsFlagsAndSummary)
{
    FlagParser p("the summary line");
    std::string s;
    u32 n = 0;
    bool b = false;
    p.addString("--out", &s, "output file");
    p.addUint("--n", &n, "a number");
    p.addBool("--quick", &b, "skip the slow part");
    p.addThreadsFlag();

    std::ostringstream os;
    p.printUsage("prog", os);
    std::string usage = os.str();
    EXPECT_NE(usage.find("the summary line"), std::string::npos);
    EXPECT_NE(usage.find("--out FILE"), std::string::npos);
    EXPECT_NE(usage.find("--n N"), std::string::npos);
    EXPECT_NE(usage.find("[--quick]"), std::string::npos);
    EXPECT_NE(usage.find("--threads N"), std::string::npos);
    EXPECT_NE(usage.find("skip the slow part"), std::string::npos);
}

TEST(DomainChecks, RequirePositiveDouble)
{
    EXPECT_NO_THROW(requirePositive("--rate", 0.5));
    EXPECT_THROW(requirePositive("--rate", 0.0), RecoverableError);
    EXPECT_THROW(requirePositive("--rate", -1.0), RecoverableError);
}

TEST(DomainChecks, RequirePositiveUint)
{
    EXPECT_NO_THROW(requirePositive("--tenants", 1u));
    EXPECT_NO_THROW(requirePositive("--tenants", 1000u));
    EXPECT_THROW(requirePositive("--tenants", 0u), RecoverableError);
}

TEST(DomainChecks, RequireNonNegativeDouble)
{
    EXPECT_NO_THROW(requireNonNegative("--plan-ms", 0.0));
    EXPECT_NO_THROW(requireNonNegative("--plan-ms", 3.5));
    EXPECT_THROW(requireNonNegative("--plan-ms", -0.1), RecoverableError);
}

TEST(DomainChecks, ErrorNamesTheOffendingFlag)
{
    try {
        requirePositive("--max-batch", 0u);
        FAIL() << "expected RecoverableError";
    } catch (const RecoverableError &e) {
        EXPECT_NE(std::string(e.what()).find("--max-batch"),
                  std::string::npos);
    }
    try {
        requirePositive("--arrival-rate", -2.0);
        FAIL() << "expected RecoverableError";
    } catch (const RecoverableError &e) {
        EXPECT_NE(std::string(e.what()).find("--arrival-rate"),
                  std::string::npos);
    }
}

}  // namespace
}  // namespace crophe::cli
