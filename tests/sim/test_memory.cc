#include <gtest/gtest.h>

#include "sim/dram.h"
#include "sim/noc.h"
#include "sim/sram.h"
#include "sim/transpose_unit.h"

namespace crophe::sim {
namespace {

TEST(Dram, StreamingHitsRows)
{
    DramModel dram(hw::configCrophe64());
    dram.access(0.0, 1 << 20, /*stream=*/1);
    dram.access(0.0, 1 << 20, /*stream=*/1);
    EXPECT_EQ(dram.rowMisses(), 1u);  // only the first access misses
    EXPECT_GT(dram.rowHits(), 1000u);
}

TEST(Dram, StreamSwitchesCostActivations)
{
    DramModel a(hw::configCrophe64());
    DramModel b(hw::configCrophe64());
    for (int i = 0; i < 64; ++i) {
        a.access(0.0, 4096, 0);                      // one stream
        b.access(0.0, 4096, static_cast<u32>(i % 2));  // ping-pong
    }
    EXPECT_LT(a.rowMisses(), b.rowMisses());
    EXPECT_GT(b.busyCycles(), 0.0);
}

TEST(Dram, BandwidthBoundsThroughput)
{
    auto cfg = hw::configCrophe64();
    DramModel dram(cfg);
    u64 words = 1 << 24;
    SimTime t = dram.access(0.0, words, 0);
    double min_cycles = static_cast<double>(words) * cfg.wordBytes() *
                        cfg.freqGhz / cfg.dramGBs;
    EXPECT_GE(t, min_cycles);
    EXPECT_LT(t, min_cycles * 1.1);
}

TEST(Sram, CapacityAndTraffic)
{
    auto cfg = hw::configCrophe36();
    SramModel sram(cfg);
    EXPECT_EQ(sram.capacityWords(), cfg.sramWords());
    SimTime t = sram.access(0.0, 1 << 20);
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(sram.totalWords(), 1ull << 20);
    // SRAM is much faster than DRAM for the same volume.
    DramModel dram(cfg);
    EXPECT_LT(t, dram.access(0.0, 1 << 20, 0));
}

TEST(Noc, HopLatencyAndSerialization)
{
    NocModel noc(hw::configCrophe64());
    SimTime one_hop = noc.transfer(0.0, 1024, 1);
    NocModel noc2(hw::configCrophe64());
    SimTime ten_hops = noc2.transfer(0.0, 1024, 10);
    EXPECT_GT(ten_hops, one_hop);
    EXPECT_NEAR(ten_hops - one_hop, 9.0, 1e-9);
}

TEST(Transpose, RoundTripTraffic)
{
    TransposeUnit tr(hw::configCrophe64());
    SimTime t = tr.transpose(0.0, 1 << 16);
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(tr.totalWords(), 1ull << 16);
    EXPECT_GT(tr.capacityWords(), 0u);
}

}  // namespace
}  // namespace crophe::sim
