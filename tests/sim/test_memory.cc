#include <gtest/gtest.h>

#include "sim/dram.h"
#include "sim/noc.h"
#include "sim/sram.h"
#include "sim/transpose_unit.h"

namespace crophe::sim {
namespace {

// Regression for the row-accounting fix: every fresh row a burst touches
// is an activation (charged rowMissPenalty); only the already-open row of
// a continuing stream hits. Previously boundary crossings were counted as
// hits with zero latency.
TEST(Dram, RowBoundaryCrossingsAreMisses)
{
    DramModel dram(hw::configCrophe64());
    const u64 row = dram.rowWords();
    const double penalty = dram.rowMissPenalty();
    const double rate = dram.wordsPerCycle();

    // Cold 4-row burst: all 4 rows are activations.
    SimTime t1 = dram.access(0.0, 4 * row, /*stream=*/1);
    EXPECT_EQ(dram.rowMisses(), 4u);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_DOUBLE_EQ(t1, 4.0 * penalty + 4.0 * static_cast<double>(row) /
                                             rate);

    // Continuing 2-row burst on the same stream: the open row hits, the
    // crossed boundary still activates.
    SimTime t2 = dram.access(t1, 2 * row, /*stream=*/1);
    EXPECT_EQ(dram.rowMisses(), 5u);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_DOUBLE_EQ(t2, t1 + penalty + 2.0 * static_cast<double>(row) /
                                            rate);

    // Stream switch on the same pseudo-channel closes the rows: a 1-row
    // burst misses again.
    SimTime t3 = dram.access(t2, row, /*stream=*/17);  // 17 % 16 == 1
    EXPECT_EQ(dram.rowMisses(), 6u);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_DOUBLE_EQ(t3, t2 + penalty + static_cast<double>(row) / rate);

    // Sub-row continuation: stays inside the open row, zero activation.
    SimTime t4 = dram.access(t3, row / 2, /*stream=*/17);
    EXPECT_EQ(dram.rowMisses(), 6u);
    EXPECT_EQ(dram.rowHits(), 2u);
    EXPECT_DOUBLE_EQ(t4, t3 + static_cast<double>(row / 2) / rate);
}

TEST(Dram, StreamSwitchesCostActivations)
{
    DramModel a(hw::configCrophe64());
    DramModel b(hw::configCrophe64());
    for (int i = 0; i < 64; ++i) {
        a.access(0.0, 4096, 0);                      // one stream
        b.access(0.0, 4096, static_cast<u32>(i % 2));  // ping-pong
    }
    EXPECT_LT(a.rowMisses(), b.rowMisses());
    EXPECT_GT(b.busyCycles(), 0.0);
}

TEST(Dram, BandwidthBoundsThroughput)
{
    auto cfg = hw::configCrophe64();
    DramModel dram(cfg);
    u64 words = 1 << 24;
    SimTime t = dram.access(0.0, words, 0);
    double min_cycles = static_cast<double>(words) * cfg.wordBytes() *
                        cfg.freqGhz / cfg.dramGBs;
    // Streaming transfer time = activation latency for every row touched
    // plus the bandwidth-limited transfer itself.
    double rows = static_cast<double>(words / dram.rowWords());
    EXPECT_GE(t, min_cycles);
    EXPECT_DOUBLE_EQ(t, rows * dram.rowMissPenalty() + min_cycles);
}

TEST(Sram, CapacityAndTraffic)
{
    auto cfg = hw::configCrophe36();
    SramModel sram(cfg);
    EXPECT_EQ(sram.capacityWords(), cfg.sramWords());
    SimTime t = sram.access(0.0, 1 << 20);
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(sram.totalWords(), 1ull << 20);
    // SRAM is much faster than DRAM for the same volume.
    DramModel dram(cfg);
    EXPECT_LT(t, dram.access(0.0, 1 << 20, 0));
}

TEST(Noc, HopLatencyAndSerialization)
{
    NocModel noc(hw::configCrophe64());
    SimTime one_hop = noc.transfer(0.0, 1024, 1);
    NocModel noc2(hw::configCrophe64());
    SimTime ten_hops = noc2.transfer(0.0, 1024, 10);
    EXPECT_GT(ten_hops, one_hop);
    EXPECT_NEAR(ten_hops - one_hop, 9.0, 1e-9);
}

TEST(Transpose, RoundTripTraffic)
{
    TransposeUnit tr(hw::configCrophe64());
    SimTime t = tr.transpose(0.0, 1 << 16);
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(tr.totalWords(), 1ull << 16);
    EXPECT_GT(tr.capacityWords(), 0u);
}

}  // namespace
}  // namespace crophe::sim
