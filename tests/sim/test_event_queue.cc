#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace crophe::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5.0, [&](SimTime) { order.push_back(2); });
    q.schedule(1.0, [&](SimTime) { order.push_back(0); });
    q.schedule(3.0, [&](SimTime) { order.push_back(1); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, StableForEqualTimestamps)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(2.0, [&, i](SimTime) { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void(SimTime)> chain = [&](SimTime t) {
        if (++count < 4)
            q.schedule(t + 1.0, chain);
    };
    q.schedule(0.0, chain);
    SimTime last = q.runAll();
    EXPECT_EQ(count, 4);
    EXPECT_DOUBLE_EQ(last, 3.0);
}

TEST(Server, FifoBandwidthSemantics)
{
    Server s(10.0);  // 10 units/cycle
    EXPECT_DOUBLE_EQ(s.serve(0.0, 100.0), 10.0);
    // Second request arrives early but queues behind the first.
    EXPECT_DOUBLE_EQ(s.serve(5.0, 50.0), 15.0);
    // Third arrives after the server idles.
    EXPECT_DOUBLE_EQ(s.serve(20.0, 10.0), 21.0);
    EXPECT_DOUBLE_EQ(s.busyCycles(), 16.0);
    EXPECT_DOUBLE_EQ(s.servedUnits(), 160.0);
}

TEST(Server, FixedLatencyDelaysStart)
{
    Server s(1.0);
    EXPECT_DOUBLE_EQ(s.serve(0.0, 1.0, 40.0), 41.0);
}

TEST(Server, NonPositiveRatePanicsAtConstruction)
{
    // A zero rate used to silently serve with duration 0 — infinite
    // bandwidth. Degenerate rates must die loudly at construction.
    EXPECT_DEATH(Server s(0.0), "rate must be positive");
    EXPECT_DEATH(Server s(-1.0), "rate must be positive");
}

}  // namespace
}  // namespace crophe::sim
