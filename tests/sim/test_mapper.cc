#include <gtest/gtest.h>

#include "graph/keyswitch_builder.h"
#include "map/mapper.h"
#include "map/trace.h"
#include "sched/ntt_decomp.h"

namespace crophe::map {
namespace {

using graph::Graph;
using graph::OpId;
using graph::OpKind;

sched::SpatialGroup
analyzedChain(const Graph &g, const hw::HwConfig &cfg)
{
    sched::SpatialGroup group;
    bool ok = sched::analyzeSpatialGroup(g, g.topoOrder(), cfg, false,
                                         group);
    EXPECT_TRUE(ok);
    return group;
}

TEST(Mapper, PlacementsStayOnTheArray)
{
    Graph g;
    OpId in = g.add(graph::makeInput(1 << 16, 24));
    OpId a = g.add(graph::makeEwBinary(OpKind::EwMul, 1 << 16, 24));
    OpId b = g.add(graph::makeEwBinary(OpKind::EwAdd, 1 << 16, 24));
    g.connect(in, a);
    g.connect(a, b);
    auto cfg = hw::configCrophe64();
    auto group = analyzedChain(g, cfg);
    GroupMapping m = mapGroup(group, g, cfg);

    ASSERT_EQ(m.placements.size(), group.allocs.size());
    for (const auto &p : m.placements)
        for (u32 pe : p.peIds)
            EXPECT_LT(pe, cfg.numPes);
    // Every internal edge has a positive hop distance.
    ASSERT_EQ(m.edgeHops.size(), group.internalEdges.size());
    for (u32 h : m.edgeHops)
        EXPECT_GE(h, 1u);
}

TEST(Mapper, TransposeFlipsPlacementDirection)
{
    // col-iNTT -> twiddle -> transpose -> row-iNTT: the row step must sit
    // on the right side of the array (Figure 4).
    Graph g;
    OpId col = g.add(graph::makeNttStep(OpKind::INttCol, 256, 256, 6));
    OpId tw = g.add(graph::makeTwiddle(1 << 16, 6));
    OpId tr = g.add(graph::makeTranspose(1 << 16, 6));
    OpId row = g.add(graph::makeNttStep(OpKind::INttRow, 256, 256, 6));
    g.connect(col, tw);
    g.connect(tw, tr);
    g.connect(tr, row);

    auto cfg = hw::configCrophe64();
    auto group = analyzedChain(g, cfg);
    GroupMapping m = mapGroup(group, g, cfg);

    double col_x = -1, row_x = -1;
    for (const auto &p : m.placements) {
        if (p.op == col)
            col_x = p.centroidX;
        if (p.op == row)
            row_x = p.centroidX;
    }
    ASSERT_GE(col_x, 0.0);
    ASSERT_GE(row_x, 0.0);
    EXPECT_GT(row_x, col_x);
}

TEST(Trace, ChunkTotalsMatchGroupAnalysis)
{
    graph::FheParams p = graph::paramsArk();
    Graph g;
    graph::buildKeySwitch(g, p, 10, graph::kNoOp, "evk");
    auto cfg = hw::configCrophe64();

    auto topo = g.topoOrder();
    std::vector<OpId> window(topo.begin(),
                             topo.begin() + std::min<std::size_t>(
                                                6, topo.size()));
    sched::SpatialGroup group;
    ASSERT_TRUE(sched::analyzeSpatialGroup(g, window, cfg, false, group));
    GroupMapping m = mapGroup(group, g, cfg);
    GroupTrace t = buildTrace(group, m, g, cfg);

    ASSERT_EQ(t.ops.size(), group.allocs.size());
    u64 sram = 0, dram = 0;
    for (const auto &top : t.ops) {
        EXPECT_GE(top.chunks, 1u);
        sram += top.sramWordsPerChunk * top.chunks;
        dram += top.dramWordsPerChunk * top.chunks;
    }
    // Apportioning rounds down per chunk; totals must be close.
    EXPECT_LE(sram, group.sramWords);
    EXPECT_LE(dram, group.dramWords);
    if (group.sramWords > 0)
        EXPECT_GT(sram, group.sramWords / 2);
}

TEST(Trace, PipelinedDepsAreMarked)
{
    Graph g;
    OpId in = g.add(graph::makeInput(1 << 16, 24));
    OpId a = g.add(graph::makeEwBinary(OpKind::EwMul, 1 << 16, 24));
    OpId ntt = g.add(graph::makeNtt(OpKind::Ntt, 1 << 16, 24));
    OpId bconv = g.add(graph::makeBConv(1 << 16, 24, 30));
    g.connect(in, a);
    g.connect(a, ntt);
    g.connect(ntt, bconv);

    auto cfg = hw::configCrophe64();
    sched::SpatialGroup group;
    ASSERT_TRUE(sched::analyzeSpatialGroup(g, g.topoOrder(), cfg, false,
                                           group));
    GroupMapping m = mapGroup(group, g, cfg);
    GroupTrace t = buildTrace(group, m, g, cfg);

    // bconv depends on ntt via a barrier (orientation switch); a on in is
    // pipelined.
    bool saw_pipelined = false, saw_barrier = false;
    for (const auto &top : t.ops) {
        for (const auto &dep : top.deps) {
            if (dep.pipelined)
                saw_pipelined = true;
            else
                saw_barrier = true;
        }
    }
    EXPECT_TRUE(saw_pipelined);
    EXPECT_TRUE(saw_barrier);
}

}  // namespace
}  // namespace crophe::map
