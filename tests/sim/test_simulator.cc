#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "graph/workloads.h"
#include "sched/mad.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace crophe::sim {
namespace {

using graph::FheParams;
using graph::Graph;
using graph::RotMode;

sched::SchedOptions
cropheOptions()
{
    sched::SchedOptions opt;
    return opt;
}

TEST(Simulator, CompletesWithoutDeadlockAndBeatsNoBound)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildHMult(p, 15);
    auto cfg = hw::configCrophe64();
    auto sched = sched::scheduleGraph(g, cfg, cropheOptions());

    SimStats sim = simulateSchedule(sched, cfg);
    EXPECT_GT(sim.cycles, 0.0);
    EXPECT_GT(sim.events, 0u);
    EXPECT_EQ(sim.flops, sched.stats.flops);
    // The simulator adds contention/latency: never faster than the
    // analytical compute bound by more than rounding.
    double compute_bound =
        static_cast<double>(sim.flops) / cfg.multsPerCycle();
    EXPECT_GE(sim.cycles, compute_bound * 0.99);
}

TEST(Simulator, ContentionMakesSimulationSlowerThanAnalytical)
{
    // "The reproduced results are slightly slower than those reported...
    // due to our more realistic simulation of DRAM accesses" — the same
    // relationship must hold between our simulator and cost model.
    FheParams p = graph::paramsArk();
    Graph g = graph::buildPtMatVecMult(p, 12, 8, 2, RotMode::Hoisting, 0);
    auto cfg = hw::configCrophe64();
    auto sched = sched::scheduleGraph(g, cfg, cropheOptions());
    SimStats sim = simulateSchedule(sched, cfg);
    EXPECT_GE(sim.cycles, 0.8 * sched.stats.cycles);
    EXPECT_LE(sim.cycles, 6.0 * sched.stats.cycles);
}

TEST(Simulator, TrafficMatchesScheduleAccounting)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildHMult(p, 10);
    auto cfg = hw::configCrophe64();
    auto sched = sched::scheduleGraph(g, cfg, cropheOptions());
    SimStats sim = simulateSchedule(sched, cfg);

    // Chunk-rounding loses at most a few percent of the traffic.
    EXPECT_LE(sim.dramWords, sched.stats.dramWords);
    EXPECT_GE(sim.dramWords, sched.stats.dramWords / 2);
    EXPECT_LE(sim.sramWords, sched.stats.sramWords);
}

TEST(Simulator, MadSuffersMoreThanCropheUnderSimulationToo)
{
    // End-to-end (including the rotation-scheme search): the CROPHE
    // dataflow beats MAD on the same chip analytically; the cycle-level
    // simulation adds pipeline-fill overhead proportional to the group
    // count, which compresses — but must not erase — the gap (see
    // EXPERIMENTS.md, fidelity notes).
    auto mad_ana = baselines::runDesign(
        baselines::designByName("CROPHE-hw+MAD"), "bootstrap");
    auto crophe_ana = baselines::runDesign(
        baselines::designByName("CROPHE-64"), "bootstrap");
    EXPECT_LT(crophe_ana.stats.cycles, mad_ana.stats.cycles);

    auto mad_sim = baselines::runDesign(
        baselines::designByName("CROPHE-hw+MAD"), "bootstrap",
        /*simulate=*/true);
    auto crophe_sim = baselines::runDesign(
        baselines::designByName("CROPHE-64"), "bootstrap",
        /*simulate=*/true);
    EXPECT_LT(crophe_sim.stats.cycles, mad_sim.stats.cycles * 1.25);
}

TEST(Simulator, WorkloadSimulationAggregates)
{
    FheParams p = graph::paramsArk();
    graph::WorkloadOptions wopt;
    wopt.rotMode = RotMode::Hybrid;
    wopt.rHyb = 4;
    auto w = graph::buildBootstrapping(p, wopt);
    auto cfg = hw::configCrophe64();

    auto sim_res = simulateWorkload(w, cfg, cropheOptions());
    auto ana_res = sched::scheduleWorkload(w, cfg, cropheOptions());
    EXPECT_GT(sim_res.stats.cycles, 0.0);
    // Simulation should be within a reasonable envelope of the model.
    EXPECT_GE(sim_res.stats.cycles, 0.8 * ana_res.stats.cycles);
    EXPECT_LE(sim_res.stats.cycles, 8.0 * ana_res.stats.cycles);
}

TEST(Simulator, DramRowBehaviourIsTracked)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildHMult(p, 10);
    auto cfg = hw::configCrophe64();
    auto sched = sched::scheduleGraph(g, cfg, cropheOptions());
    SimStats sim = simulateSchedule(sched, cfg);
    EXPECT_GT(sim.dramRowHits + sim.dramRowMisses, 0u);
    // Every fresh row in a burst activates; only the open row of a
    // continuing stream hits, so misses dominate for multi-row bursts.
    EXPECT_GT(sim.dramRowMisses, sim.dramRowHits);
}

}  // namespace
}  // namespace crophe::sim
