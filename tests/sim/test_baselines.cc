#include <gtest/gtest.h>

#include "baselines/baseline.h"

namespace crophe::baselines {
namespace {

TEST(Baselines, RegistriesMatchFigure9)
{
    auto d64 = designs64();
    ASSERT_EQ(d64.size(), 5u);
    EXPECT_EQ(d64[0].name, "BTS+MAD");
    EXPECT_EQ(d64[1].name, "ARK+MAD");
    EXPECT_EQ(d64[3].name, "CROPHE-64");
    EXPECT_TRUE(d64[4].dataParallel);

    auto d36 = designs36();
    ASSERT_EQ(d36.size(), 5u);
    EXPECT_EQ(d36[1].name, "SHARP+MAD");
    for (const auto &d : d36)
        EXPECT_LE(d.cfg.wordBits, 36u);
}

TEST(Baselines, MadDesignsUseSpecializedOrHomogeneousCorrectly)
{
    EXPECT_FALSE(designByName("ARK+MAD").cfg.homogeneous);
    EXPECT_FALSE(designByName("SHARP+MAD").cfg.homogeneous);
    EXPECT_TRUE(designByName("CROPHE-64").cfg.homogeneous);
    EXPECT_TRUE(designByName("CROPHE-hw+MAD").cfg.homogeneous);
}

TEST(Baselines, RunDesignProducesComparableResults)
{
    auto ark = runDesign(designByName("ARK+MAD"), "bootstrap");
    auto crophe = runDesign(designByName("CROPHE-64"), "bootstrap");
    EXPECT_GT(ark.stats.cycles, 0.0);
    EXPECT_GT(crophe.stats.cycles, 0.0);
    // The headline claim, at analytical level: CROPHE wins.
    EXPECT_LT(crophe.stats.cycles, ark.stats.cycles);
    EXPECT_LT(crophe.stats.dramWords, ark.stats.dramWords);
}

TEST(Baselines, CrophePNoSlowerThanCrophe)
{
    auto c = runDesign(designByName("CROPHE-64"), "bootstrap");
    auto p = runDesign(designByName("CROPHE-p-64"), "bootstrap");
    EXPECT_LE(p.stats.cycles, c.stats.cycles * 1.0001);
}

TEST(Baselines, SramSweepIncreasesCropheAdvantage)
{
    auto sharp = designByName("SHARP+MAD");
    auto crophe = designByName("CROPHE-36");

    double speedup_big =
        runDesign(sharp, "bootstrap").stats.cycles /
        runDesign(crophe, "bootstrap").stats.cycles;
    double speedup_small =
        runDesign(withSram(sharp, 45.0), "bootstrap").stats.cycles /
        runDesign(withSram(crophe, 45.0), "bootstrap").stats.cycles;
    EXPECT_GT(speedup_small, speedup_big)
        << "CROPHE's benefit must grow as SRAM shrinks (Figure 10)";
}

}  // namespace
}  // namespace crophe::baselines
