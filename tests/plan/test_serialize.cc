#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "graph/workloads.h"
#include "hw/config.h"
#include "plan/serialize.h"
#include "sched/scheduler.h"

namespace crophe::plan {
namespace {

using graph::RotMode;
using graph::WorkloadOptions;

sched::SchedOptions
cropheOptions()
{
    sched::SchedOptions opt;
    opt.crossOpDataflow = true;
    opt.nttDecomp = true;
    opt.maxGroupOps = 8;
    return opt;
}

TEST(ByteStream, PrimitivesRoundTripExactly)
{
    ByteWriter w;
    w.putU8(0xab);
    w.putU32(0xdeadbeefu);
    w.putU64(0x0123456789abcdefull);
    w.putDouble(-0.0);
    w.putDouble(std::numeric_limits<double>::infinity());
    w.putDouble(1.0 / 3.0);
    w.putString("plan\0cache");  // embedded NUL truncated by the literal
    w.putString("");

    ByteReader r(w.bytes());
    u8 a = 0;
    u32 b = 0;
    u64 c = 0;
    double d0 = 1, d1 = 1, d2 = 1;
    std::string s0, s1;
    EXPECT_TRUE(r.getU8(a));
    EXPECT_TRUE(r.getU32(b));
    EXPECT_TRUE(r.getU64(c));
    EXPECT_TRUE(r.getDouble(d0));
    EXPECT_TRUE(r.getDouble(d1));
    EXPECT_TRUE(r.getDouble(d2));
    EXPECT_TRUE(r.getString(s0));
    EXPECT_TRUE(r.getString(s1));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(a, 0xab);
    EXPECT_EQ(b, 0xdeadbeefu);
    EXPECT_EQ(c, 0x0123456789abcdefull);
    EXPECT_TRUE(std::signbit(d0));
    EXPECT_TRUE(std::isinf(d1));
    EXPECT_EQ(d2, 1.0 / 3.0);
    EXPECT_EQ(s0, "plan");
    EXPECT_EQ(s1, "");
}

TEST(ByteStream, TruncationLatchesFailure)
{
    ByteWriter w;
    w.putU32(7);
    ByteReader r(w.bytes());
    u64 v = 0;
    EXPECT_FALSE(r.getU64(v));
    EXPECT_FALSE(r.ok());
    u32 u = 0;
    EXPECT_FALSE(r.getU32(u));  // stays failed even though 4 bytes exist
    EXPECT_FALSE(r.atEnd());
}

TEST(Serialize, ScheduleRoundTripsByteIdentically)
{
    graph::FheParams p = graph::paramsArk();
    graph::Graph g = graph::buildHMult(p, 15);
    sched::Schedule s =
        sched::scheduleGraph(g, hw::configCrophe64(), cropheOptions());

    std::vector<u8> bytes = scheduleBytes(s);
    sched::Schedule back;
    ByteReader r(bytes);
    ASSERT_TRUE(deserializeSchedule(r, back));
    EXPECT_TRUE(r.atEnd());

    // Re-encoding the decoded schedule must reproduce the exact bytes:
    // the serializer covers every field the cost model and the simulator
    // read, including graph adjacency order.
    EXPECT_EQ(scheduleBytes(back), bytes);
    EXPECT_EQ(back.stats.cycles, s.stats.cycles);
    EXPECT_EQ(back.stats.dramWords, s.stats.dramWords);
    EXPECT_EQ(back.warmStats.cycles, s.warmStats.cycles);
    EXPECT_EQ(back.sequence.size(), s.sequence.size());
    EXPECT_EQ(back.graph.size(), g.size());
}

TEST(Serialize, WorkloadResultRoundTripsByteIdentically)
{
    graph::FheParams p = graph::paramsArk();
    WorkloadOptions wopt;
    wopt.rotMode = RotMode::MinKs;
    graph::Workload w = graph::buildBootstrapping(p, wopt);
    sched::WorkloadResult res =
        sched::scheduleWorkload(w, hw::configCrophe64(), cropheOptions());

    std::vector<u8> bytes = workloadResultBytes(res);
    sched::WorkloadResult back;
    ByteReader r(bytes);
    ASSERT_TRUE(deserializeWorkloadResult(r, back));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(workloadResultBytes(back), bytes);
    EXPECT_EQ(back.workload, res.workload);
    EXPECT_EQ(back.stats.cycles, res.stats.cycles);
    EXPECT_EQ(back.seconds, res.seconds);
    EXPECT_EQ(back.perSegment.size(), res.perSegment.size());
}

TEST(Serialize, RejectsWrongVersion)
{
    graph::FheParams p = graph::paramsArk();
    graph::Graph g = graph::buildHMult(p, 4);
    sched::Schedule s =
        sched::scheduleGraph(g, hw::configCrophe64(), cropheOptions());
    std::vector<u8> bytes = scheduleBytes(s);

    // The version is the leading u32; any other value must be rejected.
    bytes[0] ^= 0xff;
    sched::Schedule back;
    ByteReader r(bytes);
    EXPECT_FALSE(deserializeSchedule(r, back));
}

TEST(Serialize, RejectsTruncationAndTrailingGarbage)
{
    graph::FheParams p = graph::paramsArk();
    graph::Graph g = graph::buildHMult(p, 4);
    sched::Schedule s =
        sched::scheduleGraph(g, hw::configCrophe64(), cropheOptions());
    std::vector<u8> bytes = scheduleBytes(s);

    std::vector<u8> cut(bytes.begin(), bytes.end() - 5);
    sched::Schedule back;
    {
        ByteReader r(cut);
        EXPECT_FALSE(deserializeSchedule(r, back));
    }

    std::vector<u8> padded = bytes;
    padded.push_back(0);
    {
        ByteReader r(padded);
        EXPECT_FALSE(deserializeSchedule(r, back));
    }
}

}  // namespace
}  // namespace crophe::plan
