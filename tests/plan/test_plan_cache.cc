#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "graph/workloads.h"
#include "hw/config.h"
#include "plan/plan_cache.h"
#include "plan/serialize.h"
#include "sched/scheduler.h"

namespace crophe::plan {
namespace {

namespace fs = std::filesystem;
using graph::RotMode;
using graph::WorkloadOptions;

sched::SchedOptions
cropheOptions()
{
    sched::SchedOptions opt;
    opt.crossOpDataflow = true;
    opt.nttDecomp = true;
    opt.maxGroupOps = 8;
    return opt;
}

/** Fresh scratch directory under the test temp dir. */
std::string
scratchDir(const std::string &name)
{
    std::string dir = testing::TempDir() + "crophe_" + name;
    fs::remove_all(dir);
    return dir;
}

PlanKey
key(u64 a, u64 b = 2, u64 c = 3)
{
    PlanKey k;
    k.graphHash = a;
    k.hwDigest = b;
    k.optDigest = c;
    return k;
}

TEST(PlanCache, MemoryTierHitsAndMisses)
{
    PlanCache cache;
    std::vector<u8> out;
    EXPECT_FALSE(cache.lookup(key(1), out));
    cache.insert(key(1), {10, 20, 30});
    ASSERT_TRUE(cache.lookup(key(1), out));
    EXPECT_EQ(out, (std::vector<u8>{10, 20, 30}));
    // Same graph hash under a different hw digest is a different plan.
    EXPECT_FALSE(cache.lookup(key(1, 99), out));

    PlanCacheStats st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.insertions, 1u);
    EXPECT_EQ(st.diskWrites, 0u);  // memory-only cache
}

TEST(PlanCache, LruEvictsOldestEntry)
{
    PlanCache cache("", /*max_entries=*/2);
    cache.insert(key(1), {1});
    cache.insert(key(2), {2});
    std::vector<u8> out;
    ASSERT_TRUE(cache.lookup(key(1), out));  // 1 is now most recent
    cache.insert(key(3), {3});               // evicts 2

    EXPECT_TRUE(cache.lookup(key(1), out));
    EXPECT_FALSE(cache.lookup(key(2), out));
    EXPECT_TRUE(cache.lookup(key(3), out));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlanCache, DiskTierSurvivesProcessRestart)
{
    std::string dir = scratchDir("plan_disk");
    {
        PlanCache cache(dir);
        cache.insert(key(7), {4, 5, 6});
        EXPECT_EQ(cache.stats().diskWrites, 1u);
    }
    // A fresh cache (empty memory tier) must serve the entry from disk and
    // promote it.
    PlanCache cache(dir);
    std::vector<u8> out;
    ASSERT_TRUE(cache.lookup(key(7), out));
    EXPECT_EQ(out, (std::vector<u8>{4, 5, 6}));
    EXPECT_EQ(cache.stats().diskHits, 1u);
    // Second lookup is a memory hit: no second disk read.
    ASSERT_TRUE(cache.lookup(key(7), out));
    EXPECT_EQ(cache.stats().diskHits, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, CorruptDiskEntriesAreRejectedNotReturned)
{
    std::string dir = scratchDir("plan_corrupt");
    {
        PlanCache cache(dir);
        cache.insert(key(7), {4, 5, 6, 7, 8});
    }
    ASSERT_EQ(std::distance(fs::directory_iterator(dir),
                            fs::directory_iterator()),
              1);
    fs::path file = fs::directory_iterator(dir)->path();

    auto readAll = [&file] {
        std::ifstream is(file, std::ios::binary);
        return std::vector<char>(std::istreambuf_iterator<char>(is),
                                 std::istreambuf_iterator<char>());
    };
    auto writeAll = [&file](const std::vector<char> &bytes) {
        std::ofstream os(file, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    };
    const std::vector<char> good = readAll();
    std::vector<u8> out;

    // Flipped payload byte: checksum mismatch.
    std::vector<char> bad = good;
    bad[bad.size() - 9] ^= 0x5a;
    writeAll(bad);
    {
        PlanCache cache(dir);
        EXPECT_FALSE(cache.lookup(key(7), out));
        EXPECT_EQ(cache.stats().diskRejects, 1u);
        EXPECT_EQ(cache.stats().misses, 1u);
    }

    // Truncated file.
    writeAll(std::vector<char>(good.begin(), good.end() - 3));
    {
        PlanCache cache(dir);
        EXPECT_FALSE(cache.lookup(key(7), out));
        EXPECT_EQ(cache.stats().diskRejects, 1u);
    }

    // Stale format version (bytes 4..8 after the magic).
    bad = good;
    bad[4] ^= 0x7f;
    writeAll(bad);
    {
        PlanCache cache(dir);
        EXPECT_FALSE(cache.lookup(key(7), out));
        EXPECT_EQ(cache.stats().diskRejects, 1u);
    }

    // Key echo from some other plan (simulates a hash-collision file).
    {
        PlanCache seed2(dir);
        seed2.insert(key(8), {9});
    }
    fs::path other;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path() != file)
            other = e.path();
    ASSERT_FALSE(other.empty());
    writeAll(good);
    fs::copy_file(file, other, fs::copy_options::overwrite_existing);
    {
        PlanCache cache(dir);
        EXPECT_FALSE(cache.lookup(key(8), out));
        EXPECT_EQ(cache.stats().diskRejects, 1u);
        // The untouched entry still loads fine.
        EXPECT_TRUE(cache.lookup(key(7), out));
    }
}

TEST(PlanCache, DirFromEnv)
{
    ::setenv("CROPHE_PLAN_CACHE", "/tmp/crophe-env-dir", 1);
    EXPECT_EQ(PlanCache::dirFromEnv(), "/tmp/crophe-env-dir");
    ::unsetenv("CROPHE_PLAN_CACHE");
    EXPECT_EQ(PlanCache::dirFromEnv(), "");
}

/**
 * The bit-identity contract (DESIGN.md §8): a cache-hit schedule and a
 * pruned search must be byte-equal to a cold full search, for real
 * workloads, at any thread count.
 */
class PlanIdentity : public testing::TestWithParam<u32>
{
};

TEST_P(PlanIdentity, CacheHitMatchesColdSearchByteForByte)
{
    ThreadPool::setGlobalThreads(GetParam());
    auto cfg = hw::configCrophe64();
    for (const char *name : {"bootstrap", "resnet20"}) {
        WorkloadOptions wopt;
        wopt.rotMode = RotMode::MinKs;
        graph::Workload w =
            graph::buildWorkload(name, graph::paramsArk(), wopt);

        sched::WorkloadResult cold =
            sched::scheduleWorkload(w, cfg, cropheOptions());

        PlanCache cache;
        sched::SchedOptions opt = cropheOptions();
        opt.planCache = &cache;
        sched::WorkloadResult fill = sched::scheduleWorkload(w, cfg, opt);
        sched::WorkloadResult warm = sched::scheduleWorkload(w, cfg, opt);

        EXPECT_GT(cache.stats().hits, 0u) << name;
        EXPECT_EQ(workloadResultBytes(fill), workloadResultBytes(cold))
            << name << " @ " << GetParam() << " threads";
        EXPECT_EQ(workloadResultBytes(warm), workloadResultBytes(cold))
            << name << " @ " << GetParam() << " threads";
    }
}

TEST_P(PlanIdentity, PrunedSearchMatchesFullSearchByteForByte)
{
    ThreadPool::setGlobalThreads(GetParam());
    auto cfg = hw::configCrophe64();
    for (const char *name : {"bootstrap", "resnet20"}) {
        WorkloadOptions wopt;
        wopt.rotMode = RotMode::MinKs;
        graph::Workload w =
            graph::buildWorkload(name, graph::paramsArk(), wopt);

        sched::SchedOptions full = cropheOptions();
        full.pruneSearch = false;
        sched::SchedOptions pruned = cropheOptions();
        pruned.pruneSearch = true;

        sched::WorkloadResult a = sched::scheduleWorkload(w, cfg, full);
        sched::WorkloadResult b = sched::scheduleWorkload(w, cfg, pruned);
        EXPECT_EQ(workloadResultBytes(a), workloadResultBytes(b))
            << name << " @ " << GetParam() << " threads";
    }
}

TEST_P(PlanIdentity, DiskWarmScheduleMatchesColdSchedule)
{
    ThreadPool::setGlobalThreads(GetParam());
    // Parameterizations run concurrently under ctest -j; keep their disk
    // tiers disjoint.
    std::string dir =
        scratchDir("plan_sched_disk_t" + std::to_string(GetParam()));
    auto cfg = hw::configCrophe64();
    graph::Graph g = graph::buildHMult(graph::paramsArk(), 15);

    sched::Schedule cold = sched::scheduleGraph(g, cfg, cropheOptions());
    {
        PlanCache cache(dir);
        sched::SchedOptions opt = cropheOptions();
        opt.planCache = &cache;
        (void)sched::scheduleGraph(g, cfg, opt);
        EXPECT_GT(cache.stats().diskWrites, 0u);
    }
    PlanCache cache(dir);
    sched::SchedOptions opt = cropheOptions();
    opt.planCache = &cache;
    sched::Schedule warm = sched::scheduleGraph(g, cfg, opt);
    EXPECT_GT(cache.stats().diskHits, 0u);
    EXPECT_EQ(scheduleBytes(warm), scheduleBytes(cold));
}

INSTANTIATE_TEST_SUITE_P(Threads, PlanIdentity, testing::Values(1u, 8u),
                         [](const auto &info) {
                             return "threads" +
                                    std::to_string(info.param);
                         });

}  // namespace
}  // namespace crophe::plan
