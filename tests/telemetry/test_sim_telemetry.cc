#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "graph/workloads.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "telemetry/search_telemetry.h"
#include "telemetry/stats_registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_recorder.h"
#include "tests/telemetry/json_check.h"

namespace crophe {
namespace {

sched::Schedule
referenceSchedule(const hw::HwConfig &cfg)
{
    graph::FheParams p = graph::paramsArk();
    graph::Graph g = graph::buildHMult(p, 15);
    return sched::scheduleGraph(g, cfg, sched::SchedOptions{});
}

TEST(SimTelemetry, DisabledTelemetryIsBitIdentical)
{
    auto cfg = hw::configCrophe64();
    auto sched = referenceSchedule(cfg);

    // Seed behaviour: no telemetry argument at all.
    sim::SimStats plain = sim::simulateSchedule(sched, cfg);

    telemetry::TraceRecorder rec;
    telemetry::StatsRegistry reg;
    telemetry::SimTelemetry telem;
    telem.trace = &rec;
    telem.registry = &reg;
    sim::SimStats traced = sim::simulateSchedule(sched, cfg, &telem);

    // Observation must never perturb the simulation: every field is
    // bit-identical, not merely close.
    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.dramWords, traced.dramWords);
    EXPECT_EQ(plain.sramWords, traced.sramWords);
    EXPECT_EQ(plain.nocWords, traced.nocWords);
    EXPECT_EQ(plain.transposeWords, traced.transposeWords);
    EXPECT_EQ(plain.flops, traced.flops);
    EXPECT_EQ(plain.events, traced.events);
    EXPECT_EQ(plain.peBusy, traced.peBusy);
    EXPECT_EQ(plain.dramRowHits, traced.dramRowHits);
    EXPECT_EQ(plain.dramRowMisses, traced.dramRowMisses);

    // And a null SimTelemetry (all members null) is also the seed path.
    telemetry::SimTelemetry off;
    sim::SimStats off_stats = sim::simulateSchedule(sched, cfg, &off);
    EXPECT_EQ(plain.cycles, off_stats.cycles);
    EXPECT_EQ(plain.events, off_stats.events);
}

TEST(SimTelemetry, TraceCoversResourcesWithOrderedSpans)
{
    auto cfg = hw::configCrophe64();
    auto sched = referenceSchedule(cfg);

    telemetry::TraceRecorder rec;
    telemetry::SimTelemetry telem;
    telem.trace = &rec;
    rec.beginProcess("hmult");
    sim::simulateSchedule(sched, cfg, &telem);

    // Spans per (pid, tid): monotonically timestamped and non-overlapping
    // on every resource track (each models one serially-busy unit).
    std::map<std::pair<u32, u32>, double> last_end;
    std::set<std::string> span_tracks;
    bool saw_switch = false;
    for (const auto &ev : rec.events()) {
        if (ev.phase == 'i' && ev.name == "group switch")
            saw_switch = true;
        if (ev.phase != 'X')
            continue;
        ASSERT_GE(ev.ts, 0.0);
        ASSERT_GE(ev.dur, 0.0);
        auto key = std::make_pair(ev.pid, ev.tid);
        auto it = last_end.find(key);
        if (it != last_end.end()) {
            ASSERT_GE(ev.ts, it->second - 1e-6)
                << "overlap on " << rec.trackName(ev.pid, ev.tid);
        }
        last_end[key] = std::max(it == last_end.end() ? 0.0 : it->second,
                                 ev.ts + ev.dur);
        span_tracks.insert(rec.trackName(ev.pid, ev.tid));
    }
    // PE groups + NoC + SRAM + DRAM channels at minimum.
    EXPECT_GE(span_tracks.size(), 5u) << "only " << span_tracks.size()
                                      << " tracks carried spans";
    EXPECT_TRUE(span_tracks.count("NoC"));
    EXPECT_TRUE(span_tracks.count("SRAM banks"));
    EXPECT_TRUE(saw_switch);

    std::ostringstream os;
    rec.writeJson(os);
    EXPECT_TRUE(testing::isValidJson(os.str()));
}

TEST(SimTelemetry, RegistryTotalsMatchSimStatsExactly)
{
    auto cfg = hw::configCrophe64();
    auto sched = referenceSchedule(cfg);

    telemetry::StatsRegistry reg;
    telemetry::SimTelemetry telem;
    telem.registry = &reg;
    sim::SimStats stats = sim::simulateSchedule(sched, cfg, &telem);

    EXPECT_EQ(reg.value("sim.cycles"), stats.cycles);
    EXPECT_EQ(reg.value("sim.flops"), static_cast<double>(stats.flops));
    EXPECT_EQ(reg.value("sim.events"), static_cast<double>(stats.events));
    EXPECT_EQ(reg.value("sim.pe.busyCycles"), stats.peBusy);
    EXPECT_EQ(reg.value("sim.dram.words"),
              static_cast<double>(stats.dramWords));
    EXPECT_EQ(reg.value("sim.sram.words"),
              static_cast<double>(stats.sramWords));
    EXPECT_EQ(reg.value("sim.noc.words"),
              static_cast<double>(stats.nocWords));
    EXPECT_EQ(reg.value("sim.dram.rowHits"),
              static_cast<double>(stats.dramRowHits));
    EXPECT_EQ(reg.value("sim.dram.rowMisses"),
              static_cast<double>(stats.dramRowMisses));
    EXPECT_DOUBLE_EQ(reg.value("sim.dram.rowHitRate"),
                     stats.dramRowHitRate());

    // Accumulation: a second identical run doubles the totals.
    sim::simulateSchedule(sched, cfg, &telem);
    EXPECT_EQ(reg.value("sim.cycles"), 2.0 * stats.cycles);
    EXPECT_EQ(reg.value("sim.dram.words"),
              2.0 * static_cast<double>(stats.dramWords));

    // Group-length histogram sampled once per spatial group.
    const auto *h = dynamic_cast<const telemetry::Histogram *>(
        reg.find("sim.group.log2cycles"));
    ASSERT_NE(h, nullptr);
    EXPECT_GT(h->count(), 0u);
    EXPECT_EQ(h->count() % 2, 0u);  // two identical runs
}

TEST(SearchTelemetry, CurveTracksBestSoFar)
{
    telemetry::SearchTelemetry st;
    EXPECT_DOUBLE_EQ(st.memoHitRate(), 0.0);
    st.recordCandidate("a", 10.0);
    st.recordCandidate("b", 12.0);
    st.recordCandidate("c", 7.0);
    EXPECT_EQ(st.candidates(), 3u);
    EXPECT_DOUBLE_EQ(st.bestCost(), 7.0);
    ASSERT_EQ(st.curve().size(), 3u);
    EXPECT_DOUBLE_EQ(st.curve()[0].bestSoFar, 10.0);
    EXPECT_DOUBLE_EQ(st.curve()[1].bestSoFar, 10.0);
    EXPECT_DOUBLE_EQ(st.curve()[2].bestSoFar, 7.0);
    EXPECT_EQ(st.curve()[2].step, 2u);

    st.addEnumeration(75, 25);
    EXPECT_DOUBLE_EQ(st.memoHitRate(), 0.25);

    std::ostringstream os;
    st.writeCurveJson(os);
    EXPECT_TRUE(testing::isValidJson(os.str())) << os.str();
}

TEST(SearchTelemetry, SchedulerFeedsSearchObserver)
{
    graph::FheParams p = graph::paramsArk();
    graph::Graph g = graph::buildHMult(p, 15);
    auto cfg = hw::configCrophe64();

    telemetry::SearchTelemetry st;
    sched::SchedOptions opt;
    opt.search = &st;
    sched::scheduleGraph(g, cfg, opt);

    EXPECT_GT(st.candidates(), 0u);
    EXPECT_GT(st.analyzed(), 0u);
    EXPECT_GE(st.memoHitRate(), 0.0);
    EXPECT_LE(st.memoHitRate(), 1.0);
    // Best-so-far is non-increasing along the curve.
    double prev = st.curve().front().bestSoFar;
    for (const auto &s : st.curve()) {
        EXPECT_LE(s.bestSoFar, prev);
        EXPECT_GE(s.cost, s.bestSoFar);
        prev = s.bestSoFar;
    }
    EXPECT_DOUBLE_EQ(st.curve().back().bestSoFar, st.bestCost());

    // registerStats is idempotent and snapshots the counters.
    telemetry::StatsRegistry reg;
    st.registerStats(reg);
    st.registerStats(reg);
    EXPECT_EQ(reg.value("sched.search.candidates"),
              static_cast<double>(st.candidates()));
    EXPECT_EQ(reg.value("sched.enum.analyzed"),
              static_cast<double>(st.analyzed()));
    EXPECT_EQ(reg.value("sched.enum.memoHits"),
              static_cast<double>(st.memoHits()));
    EXPECT_DOUBLE_EQ(reg.value("sched.enum.memoHitRate"), st.memoHitRate());
}

}  // namespace
}  // namespace crophe
