#ifndef CROPHE_TESTS_TELEMETRY_JSON_CHECK_H_
#define CROPHE_TESTS_TELEMETRY_JSON_CHECK_H_

/**
 * @file
 * Minimal recursive-descent JSON validator (RFC 8259 syntax only, no value
 * tree) so the telemetry dump tests can assert well-formedness without an
 * external JSON dependency.
 */

#include <cctype>
#include <string>

namespace crophe::testing {

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    /** True iff the whole input is exactly one valid JSON value. */
    bool valid()
    {
        pos_ = 0;
        bool ok = value();
        skipWs();
        return ok && pos_ == text_.size();
    }

  private:
    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipWs()
    {
        while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                          peek() == '\r'))
            ++pos_;
    }

    bool literal(const char *lit)
    {
        for (const char *p = lit; *p != '\0'; ++p, ++pos_)
            if (eof() || peek() != *p)
                return false;
        return true;
    }

    bool string()
    {
        if (eof() || peek() != '"')
            return false;
        ++pos_;
        while (!eof() && peek() != '"') {
            unsigned char c = static_cast<unsigned char>(peek());
            if (c < 0x20)
                return false;  // raw control characters are illegal
            if (c == '\\') {
                ++pos_;
                if (eof())
                    return false;
                char e = peek();
                if (e == 'u') {
                    ++pos_;
                    for (int i = 0; i < 4; ++i, ++pos_)
                        if (eof() || std::isxdigit(
                                         static_cast<unsigned char>(peek())) == 0)
                            return false;
                    continue;
                }
                if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                    e != 'f' && e != 'n' && e != 'r' && e != 't')
                    return false;
            }
            ++pos_;
        }
        if (eof())
            return false;
        ++pos_;  // closing quote
        return true;
    }

    bool digits()
    {
        if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
            return false;
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
            ++pos_;
        return true;
    }

    bool number()
    {
        if (!eof() && peek() == '-')
            ++pos_;
        if (eof())
            return false;
        if (peek() == '0')
            ++pos_;
        else if (!digits())
            return false;
        if (!eof() && peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (!digits())
                return false;
        }
        return true;
    }

    bool object()
    {
        ++pos_;  // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (eof() || peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (eof())
                return false;
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            if (peek() != ',')
                return false;
            ++pos_;
        }
    }

    bool array()
    {
        ++pos_;  // '['
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (eof())
                return false;
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            if (peek() != ',')
                return false;
            ++pos_;
        }
    }

    bool value()
    {
        skipWs();
        if (eof())
            return false;
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

inline bool
isValidJson(const std::string &text)
{
    return JsonChecker(text).valid();
}

}  // namespace crophe::testing

#endif  // CROPHE_TESTS_TELEMETRY_JSON_CHECK_H_
