#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/trace_recorder.h"
#include "tests/telemetry/json_check.h"

namespace crophe::telemetry {
namespace {

TEST(TraceRecorder, TracksAreMemoizedPerProcess)
{
    TraceRecorder rec;
    u32 noc = rec.track("NoC");
    u32 sram = rec.track("SRAM banks");
    EXPECT_NE(noc, sram);
    EXPECT_EQ(rec.track("NoC"), noc);
    EXPECT_EQ(rec.trackName(rec.currentPid(), noc), "NoC");

    u32 pid0 = rec.currentPid();
    u32 pid1 = rec.beginProcess("boot-EvalMod");
    EXPECT_NE(pid0, pid1);
    EXPECT_EQ(rec.currentPid(), pid1);
    EXPECT_EQ(rec.processName(pid1), "boot-EvalMod");
    // A fresh process starts its own track namespace.
    u32 noc1 = rec.track("NoC");
    EXPECT_EQ(rec.trackName(pid1, noc1), "NoC");
    EXPECT_EQ(rec.trackName(pid0, noc), "NoC");
}

TEST(TraceRecorder, EventsKeepPhaseAndPayload)
{
    TraceRecorder rec;
    u32 t = rec.track("DRAM ch0");
    rec.complete(t, "burst", 100.0, 25.0, {{"words", 512.0}});
    rec.counter("dram.words", 125.0, 512.0);
    rec.instant("group switch", 130.0);

    ASSERT_EQ(rec.events().size(), 3u);
    const auto &x = rec.events()[0];
    EXPECT_EQ(x.phase, 'X');
    EXPECT_EQ(x.tid, t);
    EXPECT_DOUBLE_EQ(x.ts, 100.0);
    EXPECT_DOUBLE_EQ(x.dur, 25.0);
    ASSERT_EQ(x.args.size(), 1u);
    EXPECT_EQ(x.args[0].first, "words");
    EXPECT_EQ(rec.events()[1].phase, 'C');
    EXPECT_DOUBLE_EQ(rec.events()[1].value, 512.0);
    EXPECT_EQ(rec.events()[2].phase, 'i');
}

TEST(TraceRecorder, WriteJsonIsWellFormedChromeTrace)
{
    TraceRecorder rec;
    rec.beginProcess("segment \"one\"\n");  // names must be escaped
    u32 pe = rec.track("PE group 0");
    rec.complete(pe, "ntt", 0.0, 64.0, {{"chunk", 0.0}});
    rec.complete(pe, "ntt", 64.0, 64.0, {{"chunk", 1.0}});
    rec.counter("noc.words", 64.0, 4096.0);
    rec.instant("group switch", 128.0);

    std::ostringstream os;
    rec.writeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(testing::isValidJson(json)) << json;
    // Chrome trace envelope plus metadata naming the process and track.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"PE group 0\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // The raw newline of the process name must not survive into a string.
    EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(TraceRecorder, EmptyTraceStillValid)
{
    TraceRecorder rec;
    std::ostringstream os;
    rec.writeJson(os);
    EXPECT_TRUE(testing::isValidJson(os.str())) << os.str();
}

}  // namespace
}  // namespace crophe::telemetry
