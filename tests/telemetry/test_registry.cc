#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/stats_registry.h"
#include "tests/telemetry/json_check.h"

namespace crophe::telemetry {
namespace {

TEST(StatsRegistry, RegistersAndLooksUpAllKinds)
{
    StatsRegistry reg;
    Counter &c = reg.addCounter("sim.noc.words", "mesh words");
    Scalar &s = reg.addScalar("sim.cycles", "cycles");
    Histogram &h = reg.addHistogram("sim.lat", "latency", 0.0, 10.0, 5);
    reg.addFormula("sim.rate", "words per cycle",
                   [&c, &s] { return c.count() / s.value(); });

    c += 120;
    ++c;
    s.set(11.0);
    h.sample(3.0);
    EXPECT_EQ(reg.size(), 4u);
    EXPECT_TRUE(reg.has("sim.noc.words"));
    EXPECT_FALSE(reg.has("sim.noc"));
    EXPECT_DOUBLE_EQ(reg.value("sim.noc.words"), 121.0);
    EXPECT_DOUBLE_EQ(reg.value("sim.cycles"), 11.0);
    EXPECT_DOUBLE_EQ(reg.value("sim.rate"), 11.0);
    EXPECT_EQ(reg.find("sim.lat")->name(), "sim.lat");
    EXPECT_EQ(reg.find("missing"), nullptr);
}

TEST(StatsRegistryDeathTest, DuplicatePathPanics)
{
    StatsRegistry reg;
    reg.addCounter("sim.noc.words", "");
    EXPECT_DEATH(reg.addCounter("sim.noc.words", ""), "duplicate stat path");
}

TEST(StatsRegistryDeathTest, AncestorOfExistingPathPanics)
{
    StatsRegistry reg;
    reg.addCounter("sim.noc.words", "");
    // "sim.noc" would shadow the subtree that already holds a leaf.
    EXPECT_DEATH(reg.addScalar("sim.noc", ""), "");
}

TEST(StatsRegistryDeathTest, DescendantOfExistingLeafPanics)
{
    StatsRegistry reg;
    reg.addScalar("sim.cycles", "");
    EXPECT_DEATH(reg.addCounter("sim.cycles.stall", ""), "");
}

TEST(StatsRegistryDeathTest, GetOrCreateKindMismatchPanics)
{
    StatsRegistry reg;
    reg.counter("sim.words", "");
    EXPECT_DEATH(reg.scalar("sim.words", ""), "");
}

TEST(StatsRegistry, GetOrCreateAccumulatesAcrossCalls)
{
    StatsRegistry reg;
    reg.counter("sim.dram.words") += 10;
    reg.counter("sim.dram.words") += 32;
    reg.scalar("sim.cycles") += 1.5;
    reg.scalar("sim.cycles") += 2.5;
    reg.histogram("sim.lat", "", 0.0, 8.0, 4).sample(1.0);
    reg.histogram("sim.lat", "", 0.0, 8.0, 4).sample(5.0);
    EXPECT_DOUBLE_EQ(reg.value("sim.dram.words"), 42.0);
    EXPECT_DOUBLE_EQ(reg.value("sim.cycles"), 4.0);
    EXPECT_EQ(reg.size(), 3u);
    const auto *h = dynamic_cast<const Histogram *>(reg.find("sim.lat"));
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
}

TEST(Histogram, BinsUnderflowOverflowAndMoments)
{
    Histogram h("h", "", 0.0, 10.0, 5);  // bins [0,2) [2,4) ... [8,10)
    h.sample(-1.0);        // underflow
    h.sample(0.0);         // bin 0
    h.sample(1.999);       // bin 0
    h.sample(2.0);         // bin 1
    h.sample(9.999);       // bin 4
    h.sample(10.0);        // overflow (hi is exclusive)
    h.sample(25.0, 3);     // weighted overflow

    ASSERT_EQ(h.bins().size(), 5u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[2], 0u);
    EXPECT_EQ(h.bins()[3], 0u);
    EXPECT_EQ(h.bins()[4], 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 4u);
    EXPECT_EQ(h.count(), 9u);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 25.0);
    EXPECT_DOUBLE_EQ(h.sum(), -1.0 + 0.0 + 1.999 + 2.0 + 9.999 + 10.0 + 75.0);
    EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 9.0);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 8.0);
}

TEST(StatsRegistry, DumpJsonIsWellFormedAndNested)
{
    StatsRegistry reg;
    reg.addCounter("sim.dram.words", "off-chip words") += 7;
    reg.addCounter("sim.dram.rowHits", "row hits") += 3;
    reg.addScalar("sim.cycles", "simulated \"cycles\"").set(1.5e6);
    reg.addHistogram("sched.depth", "search depth", 0.0, 16.0, 8)
        .sample(4.0);
    reg.addFormula("sched.rate", "hit rate", [] { return 0.25; });

    std::ostringstream os;
    reg.dumpJson(os);
    std::string json = os.str();
    EXPECT_TRUE(testing::isValidJson(json)) << json;
    // Nested objects, not flat dotted keys.
    EXPECT_NE(json.find("\"sim\""), std::string::npos);
    EXPECT_NE(json.find("\"dram\""), std::string::npos);
    EXPECT_EQ(json.find("\"sim.dram.words\""), std::string::npos);
}

TEST(StatsRegistry, DumpJsonEmptyRegistry)
{
    StatsRegistry reg;
    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_TRUE(testing::isValidJson(os.str())) << os.str();
}

TEST(StatsRegistry, DumpTextListsEveryPath)
{
    StatsRegistry reg;
    reg.addCounter("b.words", "words moved");
    reg.addScalar("a.cycles", "cycles").set(2.0);
    std::ostringstream os;
    reg.dumpText(os);
    std::string text = os.str();
    EXPECT_NE(text.find("a.cycles"), std::string::npos);
    EXPECT_NE(text.find("b.words"), std::string::npos);
    EXPECT_NE(text.find("words moved"), std::string::npos);
    // Sorted: a.cycles before b.words.
    EXPECT_LT(text.find("a.cycles"), text.find("b.words"));
}

}  // namespace
}  // namespace crophe::telemetry
