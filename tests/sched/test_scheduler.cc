#include <gtest/gtest.h>

#include "common/error.h"
#include "common/parallel.h"
#include "plan/serialize.h"
#include "graph/keyswitch_builder.h"
#include "graph/workloads.h"
#include "sched/enumerator.h"
#include "sched/hybrid_rotation.h"
#include "sched/mad.h"
#include "sched/scheduler.h"
#include "telemetry/search_telemetry.h"
#include "telemetry/stats_registry.h"

namespace crophe::sched {
namespace {

using graph::FheParams;
using graph::Graph;
using graph::RotMode;
using graph::Workload;
using graph::WorkloadOptions;

SchedOptions
cropheOptions()
{
    SchedOptions opt;
    opt.crossOpDataflow = true;
    opt.nttDecomp = true;
    opt.maxGroupOps = 8;
    return opt;
}

TEST(Enumerator, MemoizationMergesRedundantSubgraphs)
{
    // A Min-KS BSGS graph repeats identical key-switch subgraphs (same
    // evk); the enumerator must analyze far fewer unique windows than it
    // is asked about.
    FheParams p = graph::paramsArk();
    Graph g = graph::buildPtMatVecMult(p, 10, 8, 1, RotMode::MinKs, 0);
    GroupEnumerator e(g, hw::configCrophe64(), false, 6);

    u64 windows = 0;
    for (u32 begin = 0; begin < g.size(); ++begin)
        for (u32 len = 1; len <= 6; ++len)
            if (e.window(begin, len))
                ++windows;
    EXPECT_GT(windows, 0u);
    EXPECT_LT(e.analyzedCount(), windows / 2)
        << "structural memoization should kick in heavily";
    EXPECT_GT(e.memoHits(), 0u);
}

TEST(Scheduler, CoversEveryOpExactlyOnce)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildHMult(p, 15);
    Schedule s = scheduleGraph(g, hw::configCrophe64(), cropheOptions());

    u32 covered = 0;
    for (const auto &tg : s.sequence)
        for (const auto &sg : tg.groups)
            covered += static_cast<u32>(sg.allocs.size());
    // NTT decomposition may rewrite the graph, so coverage is >= original.
    EXPECT_GE(covered, g.size());
    EXPECT_GT(s.stats.cycles, 0.0);
    EXPECT_GT(s.stats.flops, 0u);
}

TEST(Scheduler, CropheBeatsMadOnCropheHardware)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildPtMatVecMult(p, 12, 8, 4, RotMode::Hoisting, 0);
    auto cfg = hw::configCrophe64();

    Schedule crophe = scheduleGraph(g, cfg, cropheOptions());
    Schedule mad = scheduleGraphMad(g, cfg);

    EXPECT_LT(crophe.stats.cycles, mad.stats.cycles);
    EXPECT_LE(crophe.stats.dramWords, mad.stats.dramWords);
}

TEST(Scheduler, NttDecompositionHelps)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildHMult(p, p.L);
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);

    SchedOptions with = cropheOptions();
    SchedOptions without = cropheOptions();
    without.nttDecomp = false;

    Schedule dec = scheduleGraph(g, cfg, with);
    Schedule mono = scheduleGraph(g, cfg, without);
    // Decomposition can only be selected when it is at least as fast; it
    // trades global-buffer materialization for transpose-unit streaming,
    // so SRAM *capacity pressure* (buffers) drops even where SRAM traffic
    // may rise.
    EXPECT_LE(dec.stats.cycles, mono.stats.cycles);
}

TEST(Scheduler, AuxResidencyMakesWarmRepetitionsCheap)
{
    // Repeated HRots with the same evk: with ample SRAM the key stays
    // resident, so warm repetitions fetch no aux at all; with tiny SRAM
    // the key cannot be cached and every repetition refetches it.
    FheParams p = graph::paramsArk();
    Graph g;
    graph::OpId in = g.add(graph::makeInput(p.n(), 2 * (10 + 1), "ct"));
    graph::OpId cur = in;
    for (int i = 0; i < 3; ++i) {
        auto ks = graph::buildKeySwitch(g, p, 10, cur, "evk:rot:unit");
        cur = ks.outB;
    }

    auto big = hw::configCrophe64();  // 512 MB
    Schedule s_big = scheduleGraph(g, big, cropheOptions());
    EXPECT_GT(s_big.stats.auxDramWords, 0u);
    EXPECT_EQ(s_big.warmStats.auxDramWords, 0u);
    EXPECT_LE(s_big.warmStats.cycles, s_big.stats.cycles);

    auto tiny = hw::withSramMB(big, 2.0);
    Schedule s_tiny = scheduleGraph(g, tiny, cropheOptions());
    EXPECT_EQ(s_tiny.warmStats.auxDramWords, s_tiny.stats.auxDramWords);
    EXPECT_GT(s_tiny.warmStats.auxDramWords, 0u);
}

TEST(Scheduler, WorkloadAggregationScalesWithReps)
{
    FheParams p = graph::paramsArk();
    WorkloadOptions wopt;
    wopt.rotMode = RotMode::MinKs;
    Workload w = graph::buildBootstrapping(p, wopt);

    auto cfg = hw::configCrophe64();
    auto res = scheduleWorkload(w, cfg, cropheOptions());
    EXPECT_GT(res.stats.cycles, 0.0);
    EXPECT_EQ(res.perSegment.size(), w.segments.size());
    EXPECT_GT(res.seconds, 0.0);

    // Doubling every repetition roughly doubles the time.
    Workload w2 = w;
    for (auto &seg : w2.segments)
        seg.repetitions *= 2;
    auto res2 = scheduleWorkload(w2, cfg, cropheOptions());
    EXPECT_NEAR(res2.stats.cycles / res.stats.cycles, 2.0, 0.2);
}

TEST(Scheduler, AutoClustersNeverHurts)
{
    FheParams p = graph::paramsArk();
    WorkloadOptions wopt;
    wopt.rotMode = RotMode::Hybrid;
    wopt.rHyb = 4;
    Workload w = graph::buildBootstrapping(p, wopt);
    auto cfg = hw::configCrophe64();

    SchedOptions opt = cropheOptions();
    auto plain = scheduleWorkload(w, cfg, opt);
    auto autop = scheduleWorkloadAutoClusters(w, cfg, opt);
    EXPECT_LE(autop.stats.cycles, plain.stats.cycles * 1.0001);
}

TEST(HybridRotation, ChoiceIsAtLeastAsGoodAsPureSchemes)
{
    FheParams p = graph::paramsArk();
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);
    SchedOptions opt = cropheOptions();

    auto pure = chooseRotationScheme("bootstrap", p, cfg, opt, false);
    auto hybrid = chooseRotationScheme("bootstrap", p, cfg, opt, true);
    EXPECT_LE(hybrid.result.stats.cycles, pure.result.stats.cycles * 1.0001);
}

TEST(HybridRotation, CandidatesArePowersOfTwo)
{
    auto c = rHybCandidates(16);
    EXPECT_EQ(c, (std::vector<u32>{2, 4, 8, 16}));
}

TEST(HybridRotation, ParseRotSchemesAcceptsNamesAndAll)
{
    using graph::RotMode;
    EXPECT_EQ(parseRotSchemes("minks"),
              1u << static_cast<u32>(RotMode::MinKs));
    EXPECT_EQ(parseRotSchemes("triple"),
              1u << static_cast<u32>(RotMode::TripleHoisted));
    EXPECT_EQ(parseRotSchemes("hoisting,hybrid"),
              (1u << static_cast<u32>(RotMode::Hoisting)) |
                  (1u << static_cast<u32>(RotMode::Hybrid)));
    EXPECT_EQ(parseRotSchemes("all"), 0xFu);
    EXPECT_EQ(parseRotSchemes("minks,all"), 0xFu);
    EXPECT_THROW(parseRotSchemes("warp"), RecoverableError);
    EXPECT_THROW(parseRotSchemes(""), RecoverableError);
    EXPECT_THROW(parseRotSchemes(",,"), RecoverableError);
}

TEST(HybridRotation, ParseKsDataflowsAcceptsNamesAndAll)
{
    using graph::KsDataflow;
    EXPECT_EQ(parseKsDataflows("fused"),
              1u << static_cast<u32>(KsDataflow::Fused));
    EXPECT_EQ(parseKsDataflows("ostat,reordup"),
              (1u << static_cast<u32>(KsDataflow::OutputStationary)) |
                  (1u << static_cast<u32>(KsDataflow::ReorderedModUp)));
    EXPECT_EQ(parseKsDataflows("all"), 0x7u);
    EXPECT_THROW(parseKsDataflows("fused,banana"), RecoverableError);
    EXPECT_THROW(parseKsDataflows(""), RecoverableError);
}

TEST(HybridRotation, MasksRestrictTheSearch)
{
    FheParams p = graph::paramsArk();
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);

    SchedOptions opt = cropheOptions();
    opt.rotSchemeMask = parseRotSchemes("minks");
    opt.ksDataflowMask = parseKsDataflows("reordup");
    auto choice = chooseRotationScheme("helr", p, cfg, opt, true);
    EXPECT_EQ(choice.mode, RotMode::MinKs);
    EXPECT_EQ(choice.ksDataflow, graph::KsDataflow::ReorderedModUp);

    opt.rotSchemeMask = 0;
    EXPECT_THROW(chooseRotationScheme("helr", p, cfg, opt, true),
                 RecoverableError);
    opt.rotSchemeMask = 0xF;
    opt.ksDataflowMask = 0;
    EXPECT_THROW(chooseRotationScheme("helr", p, cfg, opt, true),
                 RecoverableError);
}

TEST(HybridRotation, EnlargedSearchNeverLosesToLegacySpace)
{
    // The cross product strictly contains the legacy (rotation × Fused)
    // space, so the winner can only improve.
    FheParams p = graph::paramsArk();
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);
    SchedOptions legacy = cropheOptions();
    legacy.ksDataflowMask = parseKsDataflows("fused");
    SchedOptions full = cropheOptions();
    auto old_best = chooseRotationScheme("helr", p, cfg, legacy, true);
    auto new_best = chooseRotationScheme("helr", p, cfg, full, true);
    EXPECT_LE(new_best.result.stats.cycles, old_best.result.stats.cycles);
}

TEST(HybridRotation, PrunedEnlargedSearchMatchesMemoFreeGroundTruth)
{
    // Branch-and-bound pruning and the shared group memo must only
    // skip work, never change the winner — byte for byte, over the
    // full rotation-scheme × ks-dataflow cross product.
    FheParams p = graph::paramsArk();
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);

    SchedOptions exact = cropheOptions();
    exact.pruneSearch = false;
    SchedOptions pruned = cropheOptions();
    pruned.pruneSearch = true;

    auto truth = chooseRotationScheme("helr", p, cfg, exact, true);
    auto fast = chooseRotationScheme("helr", p, cfg, pruned, true);
    EXPECT_EQ(truth.mode, fast.mode);
    EXPECT_EQ(truth.rHyb, fast.rHyb);
    EXPECT_EQ(truth.ksDataflow, fast.ksDataflow);
    EXPECT_EQ(plan::workloadResultBytes(truth.result),
              plan::workloadResultBytes(fast.result));
}

TEST(HybridRotation, EnlargedSearchIsThreadCountInvariant)
{
    FheParams p = graph::paramsArk();
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);
    SchedOptions opt = cropheOptions();

    u32 before = ThreadPool::globalThreads();
    ThreadPool::setGlobalThreads(1);
    auto serial = chooseRotationScheme("helr", p, cfg, opt, true);
    ThreadPool::setGlobalThreads(8);
    auto wide = chooseRotationScheme("helr", p, cfg, opt, true);
    ThreadPool::setGlobalThreads(before);

    EXPECT_EQ(serial.mode, wide.mode);
    EXPECT_EQ(serial.rHyb, wide.rHyb);
    EXPECT_EQ(serial.ksDataflow, wide.ksDataflow);
    EXPECT_EQ(serial.result.stats.cycles, wide.result.stats.cycles);
}

TEST(HybridRotation, ChoiceIsRecordedInSearchTelemetry)
{
    FheParams p = graph::paramsArk();
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);
    telemetry::SearchTelemetry search;
    SchedOptions opt = cropheOptions();
    opt.search = &search;
    auto choice = chooseRotationScheme("helr", p, cfg, opt, false);

    auto chosen = search.choices();
    ASSERT_EQ(chosen.size(), 1u);
    EXPECT_EQ(chosen[0].workload, "helr");
    EXPECT_EQ(chosen[0].rotIndex, static_cast<u32>(choice.mode));
    EXPECT_EQ(chosen[0].ksIndex, static_cast<u32>(choice.ksDataflow));

    telemetry::StatsRegistry reg;
    search.registerStats(reg, "sched");
    EXPECT_TRUE(reg.has("sched.rot.mode"));
    EXPECT_TRUE(reg.has("sched.ks.dataflow"));

    // Without a recorded choice the keys stay absent (MAD-only dumps
    // must not change shape).
    telemetry::SearchTelemetry empty;
    telemetry::StatsRegistry reg2;
    empty.registerStats(reg2, "sched");
    EXPECT_FALSE(reg2.has("sched.rot.mode"));
    EXPECT_FALSE(reg2.has("sched.ks.dataflow"));
}

}  // namespace
}  // namespace crophe::sched
