#include <gtest/gtest.h>

#include "graph/keyswitch_builder.h"
#include "graph/workloads.h"
#include "sched/enumerator.h"
#include "sched/hybrid_rotation.h"
#include "sched/mad.h"
#include "sched/scheduler.h"

namespace crophe::sched {
namespace {

using graph::FheParams;
using graph::Graph;
using graph::RotMode;
using graph::Workload;
using graph::WorkloadOptions;

SchedOptions
cropheOptions()
{
    SchedOptions opt;
    opt.crossOpDataflow = true;
    opt.nttDecomp = true;
    opt.maxGroupOps = 8;
    return opt;
}

TEST(Enumerator, MemoizationMergesRedundantSubgraphs)
{
    // A Min-KS BSGS graph repeats identical key-switch subgraphs (same
    // evk); the enumerator must analyze far fewer unique windows than it
    // is asked about.
    FheParams p = graph::paramsArk();
    Graph g = graph::buildPtMatVecMult(p, 10, 8, 1, RotMode::MinKs, 0);
    GroupEnumerator e(g, hw::configCrophe64(), false, 6);

    u64 windows = 0;
    for (u32 begin = 0; begin < g.size(); ++begin)
        for (u32 len = 1; len <= 6; ++len)
            if (e.window(begin, len))
                ++windows;
    EXPECT_GT(windows, 0u);
    EXPECT_LT(e.analyzedCount(), windows / 2)
        << "structural memoization should kick in heavily";
    EXPECT_GT(e.memoHits(), 0u);
}

TEST(Scheduler, CoversEveryOpExactlyOnce)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildHMult(p, 15);
    Schedule s = scheduleGraph(g, hw::configCrophe64(), cropheOptions());

    u32 covered = 0;
    for (const auto &tg : s.sequence)
        for (const auto &sg : tg.groups)
            covered += static_cast<u32>(sg.allocs.size());
    // NTT decomposition may rewrite the graph, so coverage is >= original.
    EXPECT_GE(covered, g.size());
    EXPECT_GT(s.stats.cycles, 0.0);
    EXPECT_GT(s.stats.flops, 0u);
}

TEST(Scheduler, CropheBeatsMadOnCropheHardware)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildPtMatVecMult(p, 12, 8, 4, RotMode::Hoisting, 0);
    auto cfg = hw::configCrophe64();

    Schedule crophe = scheduleGraph(g, cfg, cropheOptions());
    Schedule mad = scheduleGraphMad(g, cfg);

    EXPECT_LT(crophe.stats.cycles, mad.stats.cycles);
    EXPECT_LE(crophe.stats.dramWords, mad.stats.dramWords);
}

TEST(Scheduler, NttDecompositionHelps)
{
    FheParams p = graph::paramsArk();
    Graph g = graph::buildHMult(p, p.L);
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);

    SchedOptions with = cropheOptions();
    SchedOptions without = cropheOptions();
    without.nttDecomp = false;

    Schedule dec = scheduleGraph(g, cfg, with);
    Schedule mono = scheduleGraph(g, cfg, without);
    // Decomposition can only be selected when it is at least as fast; it
    // trades global-buffer materialization for transpose-unit streaming,
    // so SRAM *capacity pressure* (buffers) drops even where SRAM traffic
    // may rise.
    EXPECT_LE(dec.stats.cycles, mono.stats.cycles);
}

TEST(Scheduler, AuxResidencyMakesWarmRepetitionsCheap)
{
    // Repeated HRots with the same evk: with ample SRAM the key stays
    // resident, so warm repetitions fetch no aux at all; with tiny SRAM
    // the key cannot be cached and every repetition refetches it.
    FheParams p = graph::paramsArk();
    Graph g;
    graph::OpId in = g.add(graph::makeInput(p.n(), 2 * (10 + 1), "ct"));
    graph::OpId cur = in;
    for (int i = 0; i < 3; ++i) {
        auto ks = graph::buildKeySwitch(g, p, 10, cur, "evk:rot:unit");
        cur = ks.outB;
    }

    auto big = hw::configCrophe64();  // 512 MB
    Schedule s_big = scheduleGraph(g, big, cropheOptions());
    EXPECT_GT(s_big.stats.auxDramWords, 0u);
    EXPECT_EQ(s_big.warmStats.auxDramWords, 0u);
    EXPECT_LE(s_big.warmStats.cycles, s_big.stats.cycles);

    auto tiny = hw::withSramMB(big, 2.0);
    Schedule s_tiny = scheduleGraph(g, tiny, cropheOptions());
    EXPECT_EQ(s_tiny.warmStats.auxDramWords, s_tiny.stats.auxDramWords);
    EXPECT_GT(s_tiny.warmStats.auxDramWords, 0u);
}

TEST(Scheduler, WorkloadAggregationScalesWithReps)
{
    FheParams p = graph::paramsArk();
    WorkloadOptions wopt;
    wopt.rotMode = RotMode::MinKs;
    Workload w = graph::buildBootstrapping(p, wopt);

    auto cfg = hw::configCrophe64();
    auto res = scheduleWorkload(w, cfg, cropheOptions());
    EXPECT_GT(res.stats.cycles, 0.0);
    EXPECT_EQ(res.perSegment.size(), w.segments.size());
    EXPECT_GT(res.seconds, 0.0);

    // Doubling every repetition roughly doubles the time.
    Workload w2 = w;
    for (auto &seg : w2.segments)
        seg.repetitions *= 2;
    auto res2 = scheduleWorkload(w2, cfg, cropheOptions());
    EXPECT_NEAR(res2.stats.cycles / res.stats.cycles, 2.0, 0.2);
}

TEST(Scheduler, AutoClustersNeverHurts)
{
    FheParams p = graph::paramsArk();
    WorkloadOptions wopt;
    wopt.rotMode = RotMode::Hybrid;
    wopt.rHyb = 4;
    Workload w = graph::buildBootstrapping(p, wopt);
    auto cfg = hw::configCrophe64();

    SchedOptions opt = cropheOptions();
    auto plain = scheduleWorkload(w, cfg, opt);
    auto autop = scheduleWorkloadAutoClusters(w, cfg, opt);
    EXPECT_LE(autop.stats.cycles, plain.stats.cycles * 1.0001);
}

TEST(HybridRotation, ChoiceIsAtLeastAsGoodAsPureSchemes)
{
    FheParams p = graph::paramsArk();
    auto cfg = hw::withSramMB(hw::configCrophe64(), 64.0);
    SchedOptions opt = cropheOptions();

    auto pure = chooseRotationScheme("bootstrap", p, cfg, opt, false);
    auto hybrid = chooseRotationScheme("bootstrap", p, cfg, opt, true);
    EXPECT_LE(hybrid.result.stats.cycles, pure.result.stats.cycles * 1.0001);
}

TEST(HybridRotation, CandidatesArePowersOfTwo)
{
    auto c = rHybCandidates(16);
    EXPECT_EQ(c, (std::vector<u32>{2, 4, 8, 16}));
}

}  // namespace
}  // namespace crophe::sched
