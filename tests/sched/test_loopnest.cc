#include <gtest/gtest.h>

#include "graph/graph.h"
#include "hw/config.h"
#include "sched/loopnest.h"

namespace crophe::sched {
namespace {

using graph::Graph;
using graph::OpId;
using graph::OpKind;

TEST(LoopNest, ElementwiseChainPipelinesFinely)
{
    Graph g;
    OpId a = g.add(graph::makeEwBinary(OpKind::EwMul, 1 << 16, 24));
    OpId b = g.add(graph::makeEwBinary(OpKind::EwAdd, 1 << 16, 24));
    g.connect(a, b);
    auto cfg = hw::configCrophe64();
    EdgePlan plan = planEdge(g, a, b, cfg);
    EXPECT_EQ(plan.mode, EdgeMode::Pipelined);
    EXPECT_EQ(plan.granuleWords, cfg.lanes);
    // Buffer is tiny compared to the tensor.
    EXPECT_LT(plan.bufferWords * 100, plan.volumeWords);
}

TEST(LoopNest, INttIntoBConvIsOrientationSwitch)
{
    Graph g;
    OpId intt = g.add(graph::makeNtt(OpKind::INtt, 1 << 16, 6));
    OpId bconv = g.add(graph::makeBConv(1 << 16, 6, 24));
    g.connect(intt, bconv);
    EdgePlan plan = planEdge(g, intt, bconv, hw::configCrophe64());
    EXPECT_EQ(plan.mode, EdgeMode::Materialized);
    EXPECT_EQ(plan.bufferWords, plan.volumeWords);
}

TEST(LoopNest, BConvIntoNttIsOrientationSwitch)
{
    Graph g;
    OpId bconv = g.add(graph::makeBConv(1 << 16, 6, 24));
    OpId ntt = g.add(graph::makeNtt(OpKind::Ntt, 1 << 16, 24));
    g.connect(bconv, ntt);
    EdgePlan plan = planEdge(g, bconv, ntt, hw::configCrophe64());
    EXPECT_EQ(plan.mode, EdgeMode::Materialized);
}

TEST(LoopNest, DecomposedRowNttPipelinesWithBConv)
{
    // The Figure 7 win: row-iNTT -> BConv -> row-NTT all share the N2
    // (slot-style) loop.
    Graph g;
    OpId row_intt = g.add(graph::makeNttStep(OpKind::INttRow, 256, 256, 6));
    OpId bconv = g.add(graph::makeBConv(1 << 16, 6, 24));
    OpId row_ntt = g.add(graph::makeNttStep(OpKind::NttRow, 256, 256, 24));
    g.connect(row_intt, bconv);
    g.connect(bconv, row_ntt);
    auto cfg = hw::configCrophe64();
    EXPECT_EQ(planEdge(g, row_intt, bconv, cfg).mode, EdgeMode::Pipelined);
    EXPECT_EQ(planEdge(g, bconv, row_ntt, cfg).mode, EdgeMode::Pipelined);
}

TEST(LoopNest, ColAndRowStepsDoNotMatchEachOther)
{
    // The mid-decomposition orientation switch: N1-streaming cannot feed
    // N2-streaming directly (a transpose must intervene).
    graph::Op col = graph::makeNttStep(OpKind::INttCol, 256, 256, 6);
    graph::Op row = graph::makeNttStep(OpKind::INttRow, 256, 256, 6);
    // Their only shared axis is Limb... which col/row steps do have.
    EXPECT_TRUE(axesCompatible(col, row));  // limb-wise both stream
    // But slot-style fine pipelining is impossible:
    Graph g;
    OpId c = g.add(col);
    OpId r = g.add(row);
    g.connect(c, r);
    EdgePlan plan = planEdge(g, c, r, hw::configCrophe64());
    // Limb-granule (coarse) pipelining, not lane-granule.
    EXPECT_EQ(plan.mode, EdgeMode::Pipelined);
    EXPECT_EQ(plan.granuleWords, 1ull << 16);
}

TEST(LoopNest, TransposeEdgeUsesTransposeUnit)
{
    Graph g;
    OpId tw = g.add(graph::makeTwiddle(1 << 16, 6));
    OpId tr = g.add(graph::makeTranspose(1 << 16, 6));
    g.connect(tw, tr);
    EdgePlan plan = planEdge(g, tw, tr, hw::configCrophe64());
    EXPECT_EQ(plan.mode, EdgeMode::Materialized);
    EXPECT_EQ(plan.bufferWords, 0u);  // staged in the transpose unit
}

TEST(LoopNest, ChunkCountIsBounded)
{
    auto cfg = hw::configCrophe64();
    graph::Op big = graph::makeEwBinary(OpKind::EwMul, 1 << 17, 40);
    EXPECT_LE(chunkCount(big, cfg), 64u);
    graph::Op tiny = graph::makeEwBinary(OpKind::EwMul, 16, 1);
    EXPECT_GE(chunkCount(tiny, cfg), 1u);
}

}  // namespace
}  // namespace crophe::sched
