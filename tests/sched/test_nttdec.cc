#include <gtest/gtest.h>

#include "graph/keyswitch_builder.h"
#include "graph/workloads.h"
#include "sched/loopnest.h"
#include "sched/ntt_decomp.h"

namespace crophe::sched {
namespace {

using graph::Graph;
using graph::OpId;
using graph::OpKind;

TEST(NttDecomp, OptionsRespectLaneBound)
{
    auto opts = nttDecompositionOptions(1 << 16, 256);
    ASSERT_FALSE(opts.empty());
    for (u64 n1 : opts) {
        EXPECT_GE(n1, 256u);
        EXPECT_GE((1ull << 16) / n1, 256u);
    }
    EXPECT_TRUE(nttDecompositionOptions(1000, 256).empty());  // non-pow2
}

TEST(NttDecomp, RewritePreservesFlops)
{
    graph::FheParams p = graph::paramsArk();
    Graph g;
    graph::buildKeySwitch(g, p, p.L, graph::kNoOp, "evk");
    Graph rw = rewriteNttDecomposition(g, 256);

    EXPECT_EQ(countMonolithicNtts(rw), 0u);
    EXPECT_GT(rw.size(), g.size());
    // Twiddle multiplies add work; everything else is preserved.
    u64 tw_flops = 0;
    for (const auto &op : rw.ops())
        if (op.kind == OpKind::Twiddle)
            tw_flops += op.flops;
    EXPECT_EQ(rw.totalFlops(), g.totalFlops() + tw_flops);
}

TEST(NttDecomp, RewriteKeepsGraphAcyclic)
{
    graph::FheParams p = graph::paramsSharp();
    Graph g = graph::buildHMult(p, 20);
    Graph rw = rewriteNttDecomposition(g, 512);
    EXPECT_EQ(rw.topoOrder().size(), rw.size());
}

TEST(NttDecomp, DecompositionReducesMaterializedEdges)
{
    // Count materialized (global-buffer) words across an iNTT→BConv→NTT
    // chain, before and after decomposition.
    graph::FheParams p = graph::paramsArk();
    auto cfg = hw::configCrophe64();

    auto materialized_words = [&](const Graph &g) {
        u64 words = 0;
        for (OpId v = 0; v < g.size(); ++v) {
            for (OpId c : g.consumers(v)) {
                EdgePlan plan = planEdge(g, v, c, cfg);
                if (plan.mode == EdgeMode::Materialized &&
                    g.op(c).kind != OpKind::Transpose)
                    words += plan.volumeWords;
            }
        }
        return words;
    };

    Graph g;
    graph::buildKeySwitch(g, p, p.L, graph::kNoOp, "evk");
    Graph rw = rewriteNttDecomposition(g, 256);
    EXPECT_LT(materialized_words(rw), materialized_words(g) / 2)
        << "decomposition must at least halve orientation-switch volume";
}

TEST(NttDecomp, RewriteIsStableForGraphsWithoutNtts)
{
    Graph g;
    OpId a = g.add(graph::makeEwBinary(OpKind::EwMul, 1 << 16, 4));
    OpId b = g.add(graph::makeEwBinary(OpKind::EwAdd, 1 << 16, 4));
    g.connect(a, b);
    Graph rw = rewriteNttDecomposition(g, 256);
    EXPECT_EQ(rw.size(), g.size());
    EXPECT_EQ(rw.totalFlops(), g.totalFlops());
}

}  // namespace
}  // namespace crophe::sched
