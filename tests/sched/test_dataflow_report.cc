#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/workloads.h"
#include "sched/dataflow_report.h"
#include "sched/scheduler.h"

namespace crophe::sched {
namespace {

TEST(DataflowReport, MentionsEveryGroupAndAuxKey)
{
    graph::FheParams p = graph::paramsArk();
    graph::Graph g = graph::buildHMult(p, 10);
    auto cfg = hw::configCrophe64();
    Schedule s = scheduleGraph(g, cfg, SchedOptions{});

    std::string report = dataflowReport(s, cfg);
    EXPECT_NE(report.find("CROPHE dataflow result"), std::string::npos);
    EXPECT_NE(report.find("temporal-group 0"), std::string::npos);
    EXPECT_NE(report.find("spatial-group 0"), std::string::npos);
    EXPECT_NE(report.find("evk:mult"), std::string::npos);
    EXPECT_NE(report.find("KSKInP"), std::string::npos);
    // Both edge realizations occur in a key-switch.
    EXPECT_NE(report.find("pipelined"), std::string::npos);
    EXPECT_NE(report.find("materialized"), std::string::npos);
}

TEST(DataflowReport, WritesToDisk)
{
    graph::FheParams p = graph::paramsArk();
    graph::Graph g = graph::buildHMult(p, 5);
    auto cfg = hw::configCrophe64();
    Schedule s = scheduleGraph(g, cfg, SchedOptions{});

    const char *path = "/tmp/crophe_dataflow_test.txt";
    ASSERT_TRUE(writeDataflowReport(s, cfg, path));
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("CROPHE dataflow result"), std::string::npos);
    std::remove(path);
}

TEST(DataflowReport, RejectsUnwritablePath)
{
    graph::FheParams p = graph::paramsArk();
    graph::Graph g = graph::buildHMult(p, 3);
    auto cfg = hw::configCrophe64();
    Schedule s = scheduleGraph(g, cfg, SchedOptions{});
    EXPECT_FALSE(writeDataflowReport(s, cfg, "/nonexistent/dir/x.txt"));
}

}  // namespace
}  // namespace crophe::sched
