#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "graph/workloads.h"
#include "sched/mad.h"
#include "sched/scheduler.h"

namespace crophe::sched {
namespace {

using graph::FheParams;
using graph::Graph;
using graph::RotMode;

/** Property sweeps: invariants that must hold on every configuration. */
class ConfigSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ConfigSweep, ScheduleInvariants)
{
    hw::HwConfig cfg = hw::configByName(GetParam());
    FheParams p = graph::paramsArk();
    Graph g = graph::buildHMult(p, 12);

    SchedOptions opt;
    opt.crossOpDataflow = cfg.homogeneous;  // MAD on specialized designs
    Schedule s = opt.crossOpDataflow ? scheduleGraph(g, cfg, opt)
                                     : scheduleGraphMad(g, cfg);

    // Basic sanity on every design point.
    EXPECT_GT(s.stats.cycles, 0.0);
    EXPECT_GT(s.stats.flops, 0u);
    EXPECT_GE(s.stats.dramWords, s.stats.auxDramWords);
    // Warm repetitions never cost more than cold ones.
    EXPECT_LE(s.warmStats.cycles, s.stats.cycles * 1.0001);
    EXPECT_LE(s.warmStats.auxDramWords, s.stats.auxDramWords);
    // The bounding time covers both compute and off-chip transfer.
    EXPECT_GE(s.stats.cycles,
              static_cast<double>(s.stats.flops) / cfg.multsPerCycle() *
                  0.99);
    EXPECT_GE(s.stats.cycles, dramCycles(cfg, s.stats.dramWords) * 0.99);

    // Every op of the (possibly rewritten) graph is scheduled once.
    u32 covered = 0;
    for (const auto &tg : s.sequence)
        for (const auto &grp : tg.groups)
            covered += static_cast<u32>(grp.allocs.size());
    EXPECT_EQ(covered, s.graph.size());
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, ConfigSweep,
                         ::testing::Values("bts", "ark", "crophe64", "cl+",
                                           "sharp", "crophe36"));

/** SRAM monotonicity: shrinking the buffer never makes a design faster. */
class SramMonotonic : public ::testing::TestWithParam<double>
{
};

TEST_P(SramMonotonic, SmallerSramNeverFaster)
{
    double mb = GetParam();
    FheParams p = graph::paramsSharp();
    graph::WorkloadOptions wopt;
    wopt.rotMode = RotMode::Hoisting;
    auto w = graph::buildBootstrapping(p, wopt);

    SchedOptions opt;
    auto big = scheduleWorkload(w, hw::configCrophe36(), opt);
    auto small =
        scheduleWorkload(w, hw::withSramMB(hw::configCrophe36(), mb), opt);
    EXPECT_GE(small.stats.cycles, big.stats.cycles * 0.999) << mb << " MB";
    EXPECT_GE(small.stats.dramWords, big.stats.dramWords) << mb << " MB";
}

INSTANTIATE_TEST_SUITE_P(Capacities, SramMonotonic,
                         ::testing::Values(120.0, 90.0, 60.0, 45.0, 30.0));

/** Hybrid r_hyb sweep: every candidate yields a valid graph whose evk key
 *  count interpolates between Min-KS and Hoisting. */
class RHybSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(RHybSweep, GraphShapeInterpolates)
{
    u32 r = GetParam();
    FheParams p = graph::paramsArk();
    const u32 n1 = 16;
    Graph g = graph::buildPtMatVecMult(p, 10, n1, 2, RotMode::Hybrid, r);
    EXPECT_EQ(g.topoOrder().size(), g.size());

    std::set<std::string> keys;
    for (const auto &op : g.ops())
        if (op.kind == graph::OpKind::KskInnerProd &&
            op.auxKey.find("rot") != std::string::npos &&
            op.auxKey.find("giant") == std::string::npos)
            keys.insert(op.auxKey);
    // Baby-step keys: coarse (if any) + fine distances 1..r-1.
    u32 coarse = (n1 + r - 1) / r - 1;
    u32 expect = (r > 1 ? r - 1 : 0) + (coarse > 0 ? 1 : 0);
    EXPECT_EQ(keys.size(), expect) << "r_hyb=" << r;
}

INSTANTIATE_TEST_SUITE_P(Strides, RHybSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

/** Workload sweep: scheduling must succeed and CROPHE must never lose to
 *  MAD on its own hardware at reference capacity. */
class WorkloadSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadSweep, CropheNeverLosesToMadOnOwnHardware)
{
    auto mad = baselines::runDesign(
        baselines::designByName("CROPHE-hw+MAD"), GetParam());
    auto crophe =
        baselines::runDesign(baselines::designByName("CROPHE-64"),
                             GetParam());
    EXPECT_LT(crophe.stats.cycles, mad.stats.cycles) << GetParam();
    EXPECT_LE(crophe.stats.dramWords, mad.stats.dramWords) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadSweep,
                         ::testing::Values("bootstrap", "helr", "resnet20",
                                           "resnet110"));

}  // namespace
}  // namespace crophe::sched
