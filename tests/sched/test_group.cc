#include <gtest/gtest.h>

#include "graph/keyswitch_builder.h"
#include "graph/workloads.h"
#include "hw/config.h"
#include "sched/group.h"

namespace crophe::sched {
namespace {

using graph::Graph;
using graph::OpId;
using graph::OpKind;

Graph
ewChain(u32 len, u64 n = 1 << 16, u32 limbs = 24)
{
    Graph g;
    OpId prev = g.add(graph::makeInput(n, limbs));
    for (u32 i = 0; i < len; ++i) {
        OpId next = g.add(graph::makeEwBinary(OpKind::EwMul, n, limbs));
        g.connect(prev, next);
        prev = next;
    }
    return g;
}

TEST(SpatialGroup, AllocationsSumToAtMostAllPes)
{
    Graph g = ewChain(6);
    auto cfg = hw::configCrophe64();
    auto topo = g.topoOrder();
    SpatialGroup group;
    ASSERT_TRUE(analyzeSpatialGroup(g, topo, cfg, false, group));

    u32 total = 0;
    for (const auto &a : group.allocs) {
        EXPECT_GE(a.pes, 1u);
        total += a.pes;
    }
    EXPECT_LE(total, cfg.numPes);
}

TEST(SpatialGroup, PipeliningOverlapsCompute)
{
    // A chain of k equal element-wise ops pipelined spatially should take
    // far less than k times one op's latency.
    auto cfg = hw::configCrophe64();
    Graph one = ewChain(1);
    Graph many = ewChain(6);
    SpatialGroup g1, g6;
    ASSERT_TRUE(analyzeSpatialGroup(one, one.topoOrder(), cfg, false, g1));
    ASSERT_TRUE(analyzeSpatialGroup(many, many.topoOrder(), cfg, false, g6));
    // Six pipelined ops on 1/6 of the PEs each: ~6x one op on all PEs,
    // but far less than 6x one op *sequentially* on shares (36x).
    EXPECT_LT(g6.computeCycles, 10 * g1.computeCycles);
}

TEST(SpatialGroup, MadRejectsTransformFusion)
{
    graph::FheParams p = graph::paramsArk();
    Graph g;
    graph::buildKeySwitch(g, p, 10, graph::kNoOp, "evk");
    auto topo = g.topoOrder();
    std::vector<OpId> window(topo.begin(), topo.begin() + 4);

    SpatialGroup group;
    EXPECT_FALSE(analyzeSpatialGroup(g, window, hw::configArk(), true,
                                     group));
    // Single ops always pass under MAD.
    for (OpId id : window)
        EXPECT_TRUE(analyzeSpatialGroup(g, {id}, hw::configArk(), true,
                                        group));
}

TEST(SpatialGroup, AuxSharingDedupesWithinGroup)
{
    // Two PMults with the same plaintext key: CROPHE fetches once, MAD
    // twice.
    Graph g;
    OpId in = g.add(graph::makeInput(1 << 16, 24));
    OpId a = g.add(graph::makeEwMulPlain(1 << 16, 24, "ptx:same"));
    OpId b = g.add(graph::makeEwMulPlain(1 << 16, 24, "ptx:same"));
    g.connect(in, a);
    g.connect(in, b);
    auto cfg = hw::configCrophe64();

    SpatialGroup crophe, mad_a, mad_b;
    ASSERT_TRUE(analyzeSpatialGroup(g, g.topoOrder(), cfg, false, crophe));
    ASSERT_TRUE(analyzeSpatialGroup(g, {a}, cfg, true, mad_a));
    ASSERT_TRUE(analyzeSpatialGroup(g, {b}, cfg, true, mad_b));

    u64 aux = g.op(a).auxWords;
    // CROPHE's group carries the input once and the aux once.
    EXPECT_EQ(crophe.dramWords, g.op(in).outputWords + aux);
    // MAD pays the aux in both groups.
    EXPECT_GE(mad_a.dramWords + mad_b.dramWords, 2 * aux);
}

TEST(SpatialGroup, SpecializedHardwareSerializesSameClassWork)
{
    // Two NTTs on specialized hardware cannot exceed the NTT-class
    // capacity even if allocated different PEs.
    Graph g;
    OpId in = g.add(graph::makeInput(1 << 16, 24));
    OpId n1 = g.add(graph::makeNtt(OpKind::Ntt, 1 << 16, 24));
    OpId n2 = g.add(graph::makeNtt(OpKind::Ntt, 1 << 16, 24));
    g.connect(in, n1);
    g.connect(in, n2);

    auto sharp = hw::configSharp();
    auto crophe = hw::configCrophe36();
    SpatialGroup sp, cr;
    ASSERT_TRUE(analyzeSpatialGroup(g, g.topoOrder(), sharp, false, sp));
    ASSERT_TRUE(analyzeSpatialGroup(g, g.topoOrder(), crophe, false, cr));

    double flops = static_cast<double>(g.op(n1).flops + g.op(n2).flops);
    EXPECT_GE(sp.computeCycles,
              flops / (sharp.multsPerCycle() *
                       sharp.fuFraction[static_cast<u32>(
                           hw::FuClass::Ntt)]) -
                  1.0);
    // Homogeneous CROPHE spreads the work over every lane.
    EXPECT_LT(cr.computeCycles, sp.computeCycles);
}

TEST(SpatialGroup, BufferOverflowIsInfeasible)
{
    // Materialized edge volume beyond SRAM capacity must be rejected.
    Graph g;
    OpId intt = g.add(graph::makeNtt(OpKind::INtt, 1 << 17, 40));
    OpId bconv = g.add(graph::makeBConv(1 << 17, 40, 80));
    g.connect(intt, bconv);

    auto tiny = hw::withSramMB(hw::configCrophe64(), 8.0);
    SpatialGroup group;
    EXPECT_FALSE(analyzeSpatialGroup(g, g.topoOrder(), tiny, false, group));
    // With the full 512 MB it is fine.
    EXPECT_TRUE(analyzeSpatialGroup(g, g.topoOrder(), hw::configCrophe64(),
                                    false, group));
}

TEST(SpatialGroup, StatsAreConsistent)
{
    Graph g = ewChain(4);
    SpatialGroup group;
    auto cfg = hw::configCrophe64();
    ASSERT_TRUE(analyzeSpatialGroup(g, g.topoOrder(), cfg, false, group));
    EXPECT_EQ(group.flops, g.totalFlops());
    EXPECT_GE(group.cycles, group.computeCycles);
    EXPECT_GE(group.cycles, dramCycles(cfg, group.dramWords) - 1e-9);
}

}  // namespace
}  // namespace crophe::sched
