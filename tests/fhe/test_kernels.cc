#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/arena.h"
#include "common/cpu_features.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fhe/bconv.h"
#include "fhe/ckks.h"
#include "fhe/kernels/kernels.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;

/** Every backend compiled in AND runnable on this host. */
std::vector<kernels::Backend>
availableBackends()
{
    std::vector<kernels::Backend> out = {kernels::Backend::Scalar};
    if (kernels::available(kernels::Backend::Avx2))
        out.push_back(kernels::Backend::Avx2);
    if (kernels::available(kernels::Backend::Avx512))
        out.push_back(kernels::Backend::Avx512);
    return out;
}

const kernels::KernelTable &
tableFor(kernels::Backend b)
{
    switch (b) {
    case kernels::Backend::Scalar:
        return kernels::scalarTable();
#ifdef CROPHE_HAVE_AVX2
    case kernels::Backend::Avx2:
        return kernels::avx2Table();
#endif
#ifdef CROPHE_HAVE_AVX512
    case kernels::Backend::Avx512:
        return kernels::avx512Table();
#endif
    default:
        break;
    }
    return kernels::scalarTable();
}

/** Restores the process-wide backend selection on scope exit. */
class BackendScope
{
  public:
    BackendScope() : saved_(kernels::activeBackend()) {}
    ~BackendScope() { kernels::setBackend(saved_); }

  private:
    kernels::Backend saved_;
};

std::vector<u64>
randomCanonical(Rng &rng, u64 n, u64 q)
{
    std::vector<u64> v(n);
    for (auto &x : v)
        x = rng.nextBounded(q);
    return v;
}

// ---------------------------------------------------------------------------
// NTT differentials: every backend vs the retained seed transform
// (referenceFwdNtt/referenceInvNtt) and vs each other, across the ISSUE's
// size/prime grid.
// ---------------------------------------------------------------------------

TEST(KernelNtt, AllBackendsMatchSeedReferenceAcrossSizesAndPrimes)
{
    Rng rng(9001);
    for (u64 n : {u64(1) << 10, u64(1) << 12, u64(1) << 14, u64(1) << 16}) {
        for (u32 bits : {28u, 36u, 59u}) {
            u64 q = generateNttPrimes(bits, n, 1)[0];
            Modulus mod(q);
            NttTables tables(n, mod);
            kernels::NttView fwd = tables.forwardView();
            kernels::NttView inv = tables.inverseView();

            std::vector<u64> input = randomCanonical(rng, n, q);

            // Seed reference: eager per-butterfly reduction, kept verbatim.
            std::vector<u64> ref_f = input;
            kernels::referenceFwdNtt(ref_f.data(), fwd);
            std::vector<u64> ref_b = ref_f;
            kernels::referenceInvNtt(ref_b.data(), inv);
            EXPECT_EQ(ref_b, input) << "seed reference round trip n=" << n;

            for (kernels::Backend b : availableBackends()) {
                const kernels::KernelTable &kt = tableFor(b);
                std::vector<u64> got = input;
                kt.fwdNtt(got.data(), fwd);
                EXPECT_EQ(got, ref_f) << kt.name << " fwd n=" << n
                                      << " bits=" << bits;
                kt.invNtt(got.data(), inv);
                EXPECT_EQ(got, input) << kt.name << " inv n=" << n
                                      << " bits=" << bits;
            }
        }
    }
}

TEST(KernelNtt, ForwardMatchesNaiveBitReversedAtSmallN)
{
    const u64 n = 1 << 10;
    const u32 logn = 10;
    Rng rng(9002);
    u64 q = generateNttPrimes(36, n, 1)[0];
    Modulus mod(q);
    NttTables tables(n, mod);

    std::vector<u64> a = randomCanonical(rng, n, q);
    std::vector<u64> naive = nttNaiveNegacyclic(a, mod, tables.psi());

    for (kernels::Backend b : availableBackends()) {
        std::vector<u64> got = a;
        tableFor(b).fwdNtt(got.data(), tables.forwardView());
        for (u64 k = 0; k < n; ++k)
            ASSERT_EQ(got[k], naive[bitReverse(k, logn)])
                << tableFor(b).name << " k=" << k;
    }
}

TEST(KernelNtt, TinyTransformsStayOnScalarPathAndRoundTrip)
{
    // n < vector width must not crash or diverge: the dispatcher routes
    // them to the scalar table.
    Rng rng(9003);
    for (u64 n : {u64(2), u64(4)}) {
        u64 q = generateNttPrimes(36, n, 1)[0];
        Modulus mod(q);
        NttTables tables(n, mod);
        std::vector<u64> a = randomCanonical(rng, n, q);
        std::vector<u64> got = a;
        tables.forward(got);
        tables.inverse(got);
        EXPECT_EQ(got, a) << "n=" << n;
    }
}

// ---------------------------------------------------------------------------
// Element-wise kernels: random-input differentials against naive u128
// arithmetic, odd lengths to exercise the vector tails.
// ---------------------------------------------------------------------------

TEST(KernelElementwise, AllBackendsMatchNaiveArithmetic)
{
    Rng rng(9010);
    const u64 n = 1003;  // odd: exercises the scalar tail of SIMD loops
    for (u32 bits : {28u, 36u, 59u}) {
        u64 q = generateNttPrimes(bits, 1 << 10, 1)[0];
        Modulus mod(q);
        kernels::BarrettView bv{q, mod.barrettLo(), mod.barrettHi()};

        std::vector<u64> a = randomCanonical(rng, n, q);
        std::vector<u64> b = randomCanonical(rng, n, q);
        u64 w = rng.nextBounded(q);
        u64 w_shoup = shoupQuotient(w, q);

        std::vector<u64> add_ref(n), sub_ref(n), neg_ref(n), mul_ref(n),
            muls_ref(n);
        for (u64 i = 0; i < n; ++i) {
            add_ref[i] = a[i] + b[i] >= q ? a[i] + b[i] - q : a[i] + b[i];
            sub_ref[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + q - b[i];
            neg_ref[i] = a[i] == 0 ? 0 : q - a[i];
            mul_ref[i] = u64(u128(a[i]) * b[i] % q);
            muls_ref[i] = u64(u128(a[i]) * w % q);
        }

        std::vector<u64> idx(n);
        for (u64 i = 0; i < n; ++i)
            idx[i] = rng.nextBounded(n);
        std::vector<u64> gather_ref(n);
        for (u64 i = 0; i < n; ++i)
            gather_ref[i] = a[idx[i]];

        for (kernels::Backend back : availableBackends()) {
            const kernels::KernelTable &kt = tableFor(back);
            std::vector<u64> d;

            d = a;
            kt.addMod(d.data(), b.data(), n, q);
            EXPECT_EQ(d, add_ref) << kt.name << " addMod bits=" << bits;

            d = a;
            kt.subMod(d.data(), b.data(), n, q);
            EXPECT_EQ(d, sub_ref) << kt.name << " subMod bits=" << bits;

            d = a;
            kt.negMod(d.data(), n, q);
            EXPECT_EQ(d, neg_ref) << kt.name << " negMod bits=" << bits;

            d = a;
            kt.mulModBarrett(d.data(), b.data(), n, bv);
            EXPECT_EQ(d, mul_ref) << kt.name << " mulModBarrett bits=" << bits;

            d = a;
            kt.mulScalarShoup(d.data(), n, q, w, w_shoup);
            EXPECT_EQ(d, muls_ref) << kt.name << " mulScalarShoup bits="
                                   << bits;

            d.assign(n, 0);
            kt.gather(d.data(), a.data(), idx.data(), n);
            EXPECT_EQ(d, gather_ref) << kt.name << " gather bits=" << bits;
        }
    }
}

TEST(KernelElementwise, EdgeResiduesZeroAndQMinusOne)
{
    const u64 n = 16;
    u64 q = generateNttPrimes(59, 1 << 10, 1)[0];
    Modulus mod(q);
    kernels::BarrettView bv{q, mod.barrettLo(), mod.barrettHi()};

    std::vector<u64> a(n), b(n);
    for (u64 i = 0; i < n; ++i) {
        a[i] = (i % 2) ? q - 1 : 0;
        b[i] = (i % 3) ? q - 1 : 0;
    }

    for (kernels::Backend back : availableBackends()) {
        const kernels::KernelTable &kt = tableFor(back);
        std::vector<u64> d = a;
        kt.addMod(d.data(), b.data(), n, q);
        for (u64 i = 0; i < n; ++i)
            EXPECT_EQ(d[i], (a[i] + b[i]) % q) << kt.name << " i=" << i;
        d = a;
        kt.mulModBarrett(d.data(), b.data(), n, bv);
        for (u64 i = 0; i < n; ++i)
            EXPECT_EQ(d[i], u64(u128(a[i]) * b[i] % q)) << kt.name;
        d = a;
        kt.negMod(d.data(), n, q);
        for (u64 i = 0; i < n; ++i)
            EXPECT_EQ(d[i], a[i] ? q - a[i] : 0) << kt.name;
    }
}

// ---------------------------------------------------------------------------
// BConv / ModUp / ModDown / key-switch: backends must be limb-for-limb
// identical through the full composite paths, at 1, 2 and 8 threads.
// ---------------------------------------------------------------------------

TEST(KernelBconv, ConvertIdenticalAcrossBackendsAndThreadCounts)
{
    BackendScope restore;
    const FheContext &ctx = smallContext();
    Rng rng(9020);
    RnsPoly in(ctx, ctx.qBasis(3), Rep::Coeff);
    in.uniformRandom(rng);
    BaseConverter conv(ctx, ctx.qBasis(3), ctx.pBasis());

    kernels::setBackend(kernels::Backend::Scalar);
    ThreadPool::setGlobalThreads(1);
    RnsPoly ref = conv.convert(in);

    for (u32 threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        for (kernels::Backend b : availableBackends()) {
            kernels::setBackend(b);
            RnsPoly got = conv.convert(in);
            for (u32 l = 0; l < ref.limbCount(); ++l)
                EXPECT_EQ(got.limbVec(l), ref.limbVec(l))
                    << kernels::backendName(b) << " threads=" << threads
                    << " limb " << l;
        }
    }
    ThreadPool::setGlobalThreads(0);
}

TEST(KernelBconv, ModUpModDownIdenticalAcrossBackends)
{
    BackendScope restore;
    const FheContext &ctx = smallContext();
    Rng rng(9021);
    const u32 level = 4;
    RnsPoly d(ctx, ctx.qBasis(level), Rep::Coeff);
    d.uniformRandom(rng);

    kernels::setBackend(kernels::Backend::Scalar);
    RnsPoly up_ref = modUpDigit(ctx, d, 1, level);
    RnsPoly down_ref = modDown(ctx, up_ref, level);

    for (kernels::Backend b : availableBackends()) {
        kernels::setBackend(b);
        RnsPoly up = modUpDigit(ctx, d, 1, level);
        RnsPoly down = modDown(ctx, up, level);
        for (u32 l = 0; l < up_ref.limbCount(); ++l)
            EXPECT_EQ(up.limbVec(l), up_ref.limbVec(l))
                << kernels::backendName(b) << " modup limb " << l;
        for (u32 l = 0; l < down_ref.limbCount(); ++l)
            EXPECT_EQ(down.limbVec(l), down_ref.limbVec(l))
                << kernels::backendName(b) << " moddown limb " << l;
    }
}

TEST(KernelBconv, KeySwitchPipelineIdenticalAcrossBackendsAndThreads)
{
    BackendScope restore;
    const FheContext &ctx = smallContext();
    KeyGenerator keygen(ctx, 1234);
    PublicKey pk = keygen.makePublicKey();
    KswKey rlk = keygen.makeRelinKey();
    KswKey rk = keygen.makeRotationKey(3);

    auto run = [&]() {
        Evaluator eval(ctx, 77);
        Rng rng(78);
        std::vector<double> v(ctx.n() / 2);
        for (auto &x : v)
            x = rng.nextDouble() - 0.5;
        Plaintext pt = eval.encoder().encodeReal(v, ctx.maxLevel());
        Ciphertext ct = eval.encrypt(pt, pk);
        Ciphertext prod = eval.mul(ct, ct, rlk);
        Ciphertext rot = eval.rotate(prod, 3, rk);
        std::vector<std::vector<u64>> limbs;
        for (u32 l = 0; l < rot.a.limbCount(); ++l)
            limbs.push_back(rot.a.limbVec(l));
        for (u32 l = 0; l < rot.b.limbCount(); ++l)
            limbs.push_back(rot.b.limbVec(l));
        return limbs;
    };

    kernels::setBackend(kernels::Backend::Scalar);
    ThreadPool::setGlobalThreads(1);
    auto ref = run();

    for (u32 threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        for (kernels::Backend b : availableBackends()) {
            kernels::setBackend(b);
            EXPECT_EQ(run(), ref)
                << kernels::backendName(b) << " threads=" << threads;
        }
    }
    ThreadPool::setGlobalThreads(0);
}

// ---------------------------------------------------------------------------
// Golden bit-identity: a fixed CKKS pipeline (encode → encrypt → add →
// mul+relin → rescale → rotate → conjugate → modup → moddown → decrypt)
// whose per-step limb hashes were recorded against the seed library
// (pre-kernel-layer scalar code). Any backend, any thread count, must
// reproduce every hash exactly.
// ---------------------------------------------------------------------------

u64
fnv1a(u64 h, const u64 *p, u64 n)
{
    for (u64 i = 0; i < n; ++i) {
        u64 x = p[i];
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (x >> (8 * byte)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

u64
hashPoly(const RnsPoly &p)
{
    u64 h = 1469598103934665603ull;
    for (u32 i = 0; i < p.limbCount(); ++i)
        h = fnv1a(h, p.limb(i).data(), p.n());
    return h;
}

u64
hashCt(const Ciphertext &ct)
{
    u64 h = hashPoly(ct.b);
    h ^= hashPoly(ct.a) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

TEST(KernelGolden, BootstrapScalePipelineMatchesSeedHashes)
{
    // Hashes recorded by running this exact pipeline against the seed
    // library (commit 8a0410c, scalar only). They pin bit-identity of the
    // whole rewrite: lazy-reduction NTT, SIMD kernels, slab layout,
    // cached converters, tiled BConv.
    struct Step
    {
        const char *name;
        u64 hash;
    };
    static constexpr Step kGolden[] = {
        {"encode", 0xbb67c3cf19427f77ull},  {"encrypt", 0x34e1a62e47af48fcull},
        {"hadd", 0x1d6f883d646a6442ull},    {"hmult", 0xbd02b894146c591full},
        {"rescale", 0x3f255032adfbc33eull}, {"rotate", 0x4862a403cb1172a5ull},
        {"conjugate", 0xd63ab6022ed61fbfull},
        {"modup", 0xad07f53ab19f1588ull},   {"moddown", 0x444351fe063b0383ull},
        {"decrypt", 0x92d714c7d771321aull},
    };

    FheContextParams p;
    p.n = 1 << 12;
    p.levels = 4;
    p.alpha = 2;
    FheContext ctx(p);
    KeyGenerator keygen(ctx, 42);
    PublicKey pk = keygen.makePublicKey();
    KswKey rlk = keygen.makeRelinKey();
    KswKey rk1 = keygen.makeRotationKey(1);
    KswKey ck = keygen.makeConjugationKey();
    Evaluator eval(ctx, 7);

    Rng rng(8);
    std::vector<double> v(ctx.n() / 2);
    for (auto &x : v)
        x = rng.nextDouble() - 0.5;

    std::vector<u64> got;
    Plaintext pt = eval.encoder().encodeReal(v, ctx.maxLevel());
    got.push_back(hashPoly(pt.poly));

    Ciphertext ct0 = eval.encrypt(pt, pk);
    Ciphertext ct1 = eval.encrypt(pt, pk);
    got.push_back(hashCt(ct0));
    got.push_back(hashCt(eval.add(ct0, ct1)));

    Ciphertext prod = eval.mul(ct0, ct1, rlk);
    got.push_back(hashCt(prod));

    Ciphertext rs = eval.rescale(prod);
    got.push_back(hashCt(rs));

    Ciphertext rot = eval.rotate(rs, 1, rk1);
    got.push_back(hashCt(rot));

    Ciphertext conj = eval.conjugate(rot, ck);
    got.push_back(hashCt(conj));

    RnsPoly d = prod.a;
    d.toCoeff();
    RnsPoly up = modUpDigit(ctx, d, 0, prod.level);
    got.push_back(hashPoly(up));
    got.push_back(hashPoly(modDown(ctx, up, prod.level)));

    got.push_back(hashPoly(eval.decrypt(conj, keygen.secretKey()).poly));

    ASSERT_EQ(got.size(), std::size(kGolden));
    for (u64 i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], kGolden[i].hash)
            << kGolden[i].name << " diverged from the seed library on "
            << kernels::table().name;
}

// ---------------------------------------------------------------------------
// Dispatch, arena and CPU-feature plumbing.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ScalarAlwaysAvailableAndNamesRoundTrip)
{
    BackendScope restore;
    EXPECT_TRUE(kernels::available(kernels::Backend::Scalar));
    kernels::setBackend(kernels::Backend::Scalar);
    EXPECT_EQ(kernels::activeBackend(), kernels::Backend::Scalar);
    EXPECT_STREQ(kernels::table().name, "scalar");

    EXPECT_TRUE(kernels::setBackendByName("scalar"));
    EXPECT_TRUE(kernels::setBackendByName("auto"));
    // Unknown names are rejected without changing the selection.
    kernels::Backend before = kernels::activeBackend();
    EXPECT_FALSE(kernels::setBackendByName("sse9"));
    EXPECT_EQ(kernels::activeBackend(), before);
}

TEST(KernelDispatch, AvailabilityIsConsistentWithCpuFeatures)
{
    const CpuFeatures &f = cpuFeatures();
#ifdef CROPHE_HAVE_AVX2
    EXPECT_EQ(kernels::available(kernels::Backend::Avx2), f.avx2);
#else
    EXPECT_FALSE(kernels::available(kernels::Backend::Avx2));
#endif
#ifdef CROPHE_HAVE_AVX512
    EXPECT_EQ(kernels::available(kernels::Backend::Avx512), f.avx512);
#else
    EXPECT_FALSE(kernels::available(kernels::Backend::Avx512));
#endif
}

TEST(ScratchArena, ScopeRewindReusesStorage)
{
    ScratchArena &arena = ScratchArena::local();
    u64 *first = nullptr;
    {
        ScratchArena::Scope scope;
        first = arena.alloc<u64>(1024);
        ASSERT_NE(first, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(first) % kCacheLineBytes, 0u);
        first[0] = 42;
        first[1023] = 43;
    }
    {
        // After rewind the same storage is handed out again.
        ScratchArena::Scope scope;
        u64 *second = arena.alloc<u64>(1024);
        EXPECT_EQ(second, first);
    }
}

TEST(ScratchArena, NestedScopesRewindIndependently)
{
    ScratchArena &arena = ScratchArena::local();
    ScratchArena::Scope outer;
    u64 *a = arena.alloc<u64>(16);
    u64 *inner_ptr = nullptr;
    {
        ScratchArena::Scope inner;
        inner_ptr = arena.alloc<u64>(16);
        EXPECT_NE(inner_ptr, a);
    }
    // Inner rewind must not release the outer allocation.
    u64 *b = arena.alloc<u64>(16);
    EXPECT_EQ(b, inner_ptr);
    EXPECT_NE(b, a);
}

}  // namespace
}  // namespace crophe::fhe
