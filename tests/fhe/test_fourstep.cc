#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/ntt.h"
#include "fhe/ntt_fourstep.h"
#include "fhe/primes.h"

namespace crophe::fhe {
namespace {

TEST(FourStepNtt, RoundTripIsIdentity)
{
    Rng rng(21);
    for (auto [n1, n2] : {std::pair<u64, u64>{4, 4},
                          {8, 16},
                          {16, 8},
                          {32, 32},
                          {2, 64}}) {
        const u64 n = n1 * n2;
        auto primes = generateNttPrimes(40, n, 1);
        Modulus mod(primes[0]);
        FourStepNtt fs(n1, n2, mod);

        std::vector<u64> a(n);
        for (auto &x : a)
            x = rng.nextBounded(mod.value());
        auto b = fs.inverse(fs.forward(a));
        EXPECT_EQ(a, b) << "n1=" << n1 << " n2=" << n2;
    }
}

TEST(FourStepNtt, PointwiseProductIsNegacyclicConvolution)
{
    Rng rng(22);
    const u64 n1 = 16, n2 = 16, n = n1 * n2;
    auto primes = generateNttPrimes(45, n, 1);
    Modulus mod(primes[0]);
    FourStepNtt fs(n1, n2, mod);

    std::vector<u64> a(n), b(n);
    for (auto &x : a)
        x = rng.nextBounded(mod.value());
    for (auto &x : b)
        x = rng.nextBounded(mod.value());
    auto expect = polyMulNaive(a, b, mod);

    auto fa = fs.forward(a);
    auto fb = fs.forward(b);
    for (u64 i = 0; i < n; ++i)
        fa[i] = mod.mul(fa[i], fb[i]);
    auto got = fs.inverse(fa);
    EXPECT_EQ(got, expect);
}

TEST(FourStepNtt, AllFactorizationsAgree)
{
    Rng rng(23);
    const u64 n = 256;
    auto primes = generateNttPrimes(40, n, 1);
    Modulus mod(primes[0]);

    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.nextBounded(mod.value());

    // All decompositions compute the same natural-order transform because
    // they share the deterministic primitive root from findPrimitiveRoot.
    FourStepNtt ref(16, 16, mod);
    auto expect = ref.forward(a);
    for (auto [n1, n2] : {std::pair<u64, u64>{2, 128},
                          {4, 64},
                          {8, 32},
                          {32, 8},
                          {64, 4},
                          {128, 2}}) {
        FourStepNtt fs(n1, n2, mod);
        EXPECT_EQ(fs.forward(a), expect) << "n1=" << n1;
    }
}

TEST(FourStepNtt, MatchesNaiveReference)
{
    Rng rng(24);
    const u64 n1 = 8, n2 = 8, n = n1 * n2;
    auto primes = generateNttPrimes(40, n, 1);
    Modulus mod(primes[0]);
    FourStepNtt fs(n1, n2, mod);

    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.nextBounded(mod.value());

    u64 psi = findPrimitiveRoot(mod.value(), 2 * n);
    auto expect = nttNaiveNegacyclic(a, mod, psi);
    EXPECT_EQ(fs.forward(a), expect);
}

TEST(FourStepNtt, OrientationSwitchAccounting)
{
    EXPECT_EQ(FourStepNtt::orientationSwitchesDecomposed(), 2u);
    EXPECT_EQ(FourStepNtt::orientationSwitchesMonolithic(), 4u);
    EXPECT_LT(FourStepNtt::orientationSwitchesDecomposed(),
              FourStepNtt::orientationSwitchesMonolithic());
}

}  // namespace
}  // namespace crophe::fhe
