#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/biguint.h"

namespace crophe::fhe {
namespace {

TEST(BigUInt, ZeroAndBasics)
{
    BigUInt z;
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.toHex(), "0");
    BigUInt one(1);
    EXPECT_FALSE(one.isZero());
    EXPECT_EQ(one.toHex(), "1");
    EXPECT_LT(z.compare(one), 0);
    EXPECT_GT(one.compare(z), 0);
    EXPECT_EQ(one.compare(one), 0);
}

TEST(BigUInt, AddCarriesAcrossWords)
{
    BigUInt a(~0ull);
    a.addSmallInplace(1);
    EXPECT_EQ(a.toHex(), "10000000000000000");
    EXPECT_EQ(a.wordCount(), 2u);
    EXPECT_EQ(a.modSmall(3), ((~0ull) % 3 + 1) % 3);
}

TEST(BigUInt, SubBorrowsAcrossWords)
{
    BigUInt a = BigUInt::fromWords({0, 1});  // 2^64
    a.subInplace(BigUInt(1));
    EXPECT_EQ(a.toHex(), "ffffffffffffffff");
}

TEST(BigUInt, MulSmallAgainstU128)
{
    Rng rng(30);
    for (int i = 0; i < 200; ++i) {
        u64 x = rng.next() >> 1;
        u64 y = rng.next() >> 1;
        BigUInt b(x);
        b.mulSmallInplace(y);
        u128 expect = static_cast<u128>(x) * y;
        EXPECT_EQ(b.modSmall(0xffffffffffffffc5ull),
                  static_cast<u64>(expect % 0xffffffffffffffc5ull));
    }
}

TEST(BigUInt, ModSmallMatchesProductStructure)
{
    // (a*b*c) mod m computed both ways.
    std::vector<u64> fs = {123456789ull, 987654321ull, 555555555ull};
    BigUInt p = productOf(fs);
    u64 m = 1000000007ull;
    u64 expect = 1;
    for (u64 f : fs)
        expect = static_cast<u64>(static_cast<u128>(expect) * (f % m) % m);
    EXPECT_EQ(p.modSmall(m), expect);
}

TEST(BigUInt, HalfIsFloorDivTwo)
{
    BigUInt a = BigUInt::fromWords({1, 1});  // 2^64 + 1
    BigUInt h = a.half();                    // 2^63
    EXPECT_EQ(h.toHex(), "8000000000000000");
    BigUInt b(7);
    EXPECT_EQ(b.half().modSmall(100), 3u);
}

TEST(BigUInt, ToDoubleApproximation)
{
    BigUInt a(1);
    for (int i = 0; i < 5; ++i)
        a.mulSmallInplace(1ull << 20);  // 2^100
    double d = a.toDouble();
    EXPECT_NEAR(d / 0x1.0p100, 1.0, 1e-12);
}

TEST(BigUInt, AddMulSmallAccumulates)
{
    BigUInt acc(0);
    BigUInt base(1000000000ull);
    acc.addMulSmall(base, 7);
    acc.addMulSmall(base, 3);
    EXPECT_EQ(acc.modSmall(~0ull), 10000000000ull % (~0ull));
    EXPECT_EQ(acc.modSmall(97), (10000000000ull) % 97);
}

TEST(BigUIntDeath, UnderflowPanics)
{
    EXPECT_DEATH(
        {
            BigUInt a(1);
            a.subInplace(BigUInt(2));
        },
        "underflow");
}

}  // namespace
}  // namespace crophe::fhe
