#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fhe/chebyshev.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;

TEST(PolyEval, ReferenceHorner)
{
    std::vector<double> p = {1.0, -2.0, 3.0};  // 1 - 2x + 3x²
    EXPECT_DOUBLE_EQ(evalPolyRef(p, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(evalPolyRef(p, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(evalPolyRef(p, 2.0), 9.0);
}

TEST(PolyEval, CosineCoefficientsApproximateCosine)
{
    auto coeffs = cosineMonomialCoeffs(3.14159, 14);
    for (double x : {-1.0, -0.5, 0.0, 0.3, 0.9}) {
        EXPECT_NEAR(evalPolyRef(coeffs, x), std::cos(3.14159 * x), 1e-4)
            << x;
    }
}

TEST(PolyEval, HomomorphicQuadratic)
{
    const FheContext &ctx = smallContext();
    KeyGenerator keygen(ctx, 505);
    auto pk = keygen.makePublicKey();
    auto rlk = keygen.makeRelinKey();
    Evaluator eval(ctx, 7);

    Rng rng(120);
    std::vector<double> v(ctx.n() / 2);
    for (auto &x : v)
        x = rng.nextDouble() * 2 - 1;

    std::vector<double> p = {0.5, -1.0, 0.25};  // 0.5 - x + 0.25 x²
    auto ct = eval.encrypt(eval.encoder().encodeReal(v, ctx.maxLevel()), pk);
    auto out = evalPolyHorner(eval, ct, p, rlk);
    auto got = eval.encoder().decode(eval.decrypt(out, keygen.secretKey()));
    for (u64 i = 0; i < v.size(); ++i)
        EXPECT_NEAR(got[i].real(), evalPolyRef(p, v[i]), 5e-2) << i;
}

TEST(PolyEval, HomomorphicCubicConsumesLevels)
{
    const FheContext &ctx = smallContext();
    KeyGenerator keygen(ctx, 506);
    auto pk = keygen.makePublicKey();
    auto rlk = keygen.makeRelinKey();
    Evaluator eval(ctx, 8);

    std::vector<double> v = {0.5, -0.5, 0.9};
    std::vector<double> p = {0.1, 0.2, -0.3, 0.4};
    auto ct = eval.encrypt(eval.encoder().encodeReal(v, ctx.maxLevel()), pk);
    auto out = evalPolyHorner(eval, ct, p, rlk);
    EXPECT_EQ(out.level, ctx.maxLevel() - 3);
    auto got = eval.encoder().decode(eval.decrypt(out, keygen.secretKey()));
    for (u64 i = 0; i < v.size(); ++i)
        EXPECT_NEAR(got[i].real(), evalPolyRef(p, v[i]), 5e-2) << i;
}

}  // namespace
}  // namespace crophe::fhe
