#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/ckks.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;

struct RotFixtureState
{
    const FheContext &ctx;
    KeyGenerator keygen;
    PublicKey pk;
    Evaluator eval;

    RotFixtureState()
        : ctx(smallContext()), keygen(ctx, 2024), pk(keygen.makePublicKey()),
          eval(ctx, 55)
    {
    }
};

RotFixtureState &
state()
{
    static RotFixtureState s;
    return s;
}

TEST(HRot, RotatesSlotsLeft)
{
    auto &s = state();
    const u64 slots = s.ctx.n() / 2;
    std::vector<double> v(slots);
    for (u64 i = 0; i < slots; ++i)
        v[i] = static_cast<double>(i % 31) * 0.1;

    for (i64 r : {1, 2, 7}) {
        auto rk = s.keygen.makeRotationKey(r);
        auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(v, 3), s.pk);
        auto rot = s.eval.rotate(ct, r, rk);
        EXPECT_EQ(rot.level, ct.level);
        auto got = s.eval.encoder().decode(
            s.eval.decrypt(rot, s.keygen.secretKey()));
        for (u64 i = 0; i < slots; ++i)
            EXPECT_NEAR(got[i].real(), v[(i + r) % slots], 1e-3)
                << "r=" << r << " i=" << i;
    }
}

TEST(HRot, CompositionOfRotations)
{
    auto &s = state();
    const u64 slots = s.ctx.n() / 2;
    std::vector<double> v(slots);
    for (u64 i = 0; i < slots; ++i)
        v[i] = (i % 17) * 0.25 - 1.0;

    auto rk1 = s.keygen.makeRotationKey(1);
    auto rk3 = s.keygen.makeRotationKey(3);
    auto rk4 = s.keygen.makeRotationKey(4);

    auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(v, 2), s.pk);
    auto path_a = s.eval.rotate(s.eval.rotate(ct, 1, rk1), 3, rk3);
    auto path_b = s.eval.rotate(ct, 4, rk4);

    auto ga = s.eval.encoder().decode(
        s.eval.decrypt(path_a, s.keygen.secretKey()));
    auto gb = s.eval.encoder().decode(
        s.eval.decrypt(path_b, s.keygen.secretKey()));
    for (u64 i = 0; i < slots; ++i)
        EXPECT_NEAR(ga[i].real(), gb[i].real(), 1e-3) << i;
}

TEST(HRot, FullCycleIsIdentity)
{
    auto &s = state();
    const u64 slots = s.ctx.n() / 2;
    std::vector<double> v(slots);
    for (u64 i = 0; i < slots; ++i)
        v[i] = (i % 13) * 0.3;

    // Rotating by slots/4 four times returns to the original layout.
    i64 quarter = static_cast<i64>(slots / 4);
    auto rk = s.keygen.makeRotationKey(quarter);
    auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(v, 2), s.pk);
    auto cur = ct;
    for (int k = 0; k < 4; ++k)
        cur = s.eval.rotate(cur, quarter, rk);
    auto got = s.eval.encoder().decode(
        s.eval.decrypt(cur, s.keygen.secretKey()));
    for (u64 i = 0; i < slots; ++i)
        EXPECT_NEAR(got[i].real(), v[i], 1e-2) << i;
}

TEST(HRot, ConjugationKey)
{
    auto &s = state();
    Rng rng(101);
    const u64 slots = s.ctx.n() / 2;
    std::vector<Cplx> z(slots);
    for (auto &x : z)
        x = Cplx(rng.nextDouble() - 0.5, rng.nextDouble() - 0.5);

    auto ck = s.keygen.makeConjugationKey();
    auto ct = s.eval.encrypt(s.eval.encoder().encode(z, 2), s.pk);
    auto conj = s.eval.conjugate(ct, ck);
    auto got = s.eval.encoder().decode(
        s.eval.decrypt(conj, s.keygen.secretKey()));
    for (u64 i = 0; i < slots; ++i) {
        EXPECT_NEAR(got[i].real(), z[i].real(), 1e-3);
        EXPECT_NEAR(got[i].imag(), -z[i].imag(), 1e-3);
    }
}

TEST(HRot, RotationAtLowerLevels)
{
    auto &s = state();
    const u64 slots = s.ctx.n() / 2;
    std::vector<double> v(slots);
    for (u64 i = 0; i < slots; ++i)
        v[i] = (i % 7) * 0.5;

    auto rk = s.keygen.makeRotationKey(2);
    // Level 1 exercises the partial-digit path of key switching.
    auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(v, 1), s.pk);
    auto rot = s.eval.rotate(ct, 2, rk);
    auto got = s.eval.encoder().decode(
        s.eval.decrypt(rot, s.keygen.secretKey()));
    for (u64 i = 0; i < slots; ++i)
        EXPECT_NEAR(got[i].real(), v[(i + 2) % slots], 1e-3) << i;
}

}  // namespace
}  // namespace crophe::fhe
