#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "fhe/ckks.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;

/** Shared key material (generated once; keygen dominates test time). */
struct CkksFixtureState
{
    const FheContext &ctx;
    KeyGenerator keygen;
    PublicKey pk;
    KswKey rlk;
    Evaluator eval;

    CkksFixtureState()
        : ctx(smallContext()),
          keygen(ctx, 12345),
          pk(keygen.makePublicKey()),
          rlk(keygen.makeRelinKey()),
          eval(ctx, 999)
    {
    }
};

CkksFixtureState &
state()
{
    static CkksFixtureState s;
    return s;
}

std::vector<double>
randomReals(u64 count, Rng &rng, double lo = -1.0, double hi = 1.0)
{
    std::vector<double> v(count);
    for (auto &x : v)
        x = lo + (hi - lo) * rng.nextDouble();
    return v;
}

TEST(Ckks, EncryptDecryptPublicKey)
{
    auto &s = state();
    Rng rng(90);
    auto v = randomReals(s.ctx.n() / 2, rng);
    Plaintext pt = s.eval.encoder().encodeReal(v, s.ctx.maxLevel());
    Ciphertext ct = s.eval.encrypt(pt, s.pk);
    auto got = s.eval.encoder().decode(s.eval.decrypt(ct, s.keygen.secretKey()));
    for (u64 i = 0; i < v.size(); ++i)
        EXPECT_NEAR(got[i].real(), v[i], 1e-4) << i;
}

TEST(Ckks, EncryptDecryptSymmetric)
{
    auto &s = state();
    Rng rng(91);
    auto v = randomReals(s.ctx.n() / 2, rng);
    Plaintext pt = s.eval.encoder().encodeReal(v, 2);
    Ciphertext ct = s.eval.encryptSymmetric(pt, s.keygen.secretKey());
    auto got = s.eval.encoder().decode(s.eval.decrypt(ct, s.keygen.secretKey()));
    for (u64 i = 0; i < v.size(); ++i)
        EXPECT_NEAR(got[i].real(), v[i], 1e-5) << i;
}

TEST(Ckks, HomomorphicAddition)
{
    auto &s = state();
    Rng rng(92);
    auto v1 = randomReals(s.ctx.n() / 2, rng);
    auto v2 = randomReals(s.ctx.n() / 2, rng);
    auto p1 = s.eval.encoder().encodeReal(v1, 3);
    auto p2 = s.eval.encoder().encodeReal(v2, 3);
    auto c1 = s.eval.encrypt(p1, s.pk);
    auto c2 = s.eval.encrypt(p2, s.pk);
    auto sum = s.eval.add(c1, c2);
    auto diff = s.eval.sub(c1, c2);
    auto got_sum =
        s.eval.encoder().decode(s.eval.decrypt(sum, s.keygen.secretKey()));
    auto got_diff =
        s.eval.encoder().decode(s.eval.decrypt(diff, s.keygen.secretKey()));
    for (u64 i = 0; i < v1.size(); ++i) {
        EXPECT_NEAR(got_sum[i].real(), v1[i] + v2[i], 1e-4);
        EXPECT_NEAR(got_diff[i].real(), v1[i] - v2[i], 1e-4);
    }
}

TEST(Ckks, PlaintextOps)
{
    auto &s = state();
    Rng rng(93);
    auto v1 = randomReals(s.ctx.n() / 2, rng);
    auto v2 = randomReals(s.ctx.n() / 2, rng);
    auto c1 = s.eval.encrypt(s.eval.encoder().encodeReal(v1, 3), s.pk);
    auto p2 = s.eval.encoder().encodeReal(v2, 3);

    auto padd =
        s.eval.encoder().decode(s.eval.decrypt(s.eval.addPlain(c1, p2),
                                               s.keygen.secretKey()));
    auto pmul_ct = s.eval.rescale(s.eval.mulPlain(c1, p2));
    auto pmul = s.eval.encoder().decode(
        s.eval.decrypt(pmul_ct, s.keygen.secretKey()));
    for (u64 i = 0; i < v1.size(); ++i) {
        EXPECT_NEAR(padd[i].real(), v1[i] + v2[i], 1e-4);
        EXPECT_NEAR(pmul[i].real(), v1[i] * v2[i], 1e-3) << i;
    }
}

TEST(Ckks, ConstantOps)
{
    auto &s = state();
    Rng rng(94);
    auto v = randomReals(s.ctx.n() / 2, rng);
    auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(v, 3), s.pk);

    auto cadd = s.eval.encoder().decode(
        s.eval.decrypt(s.eval.addConst(ct, 1.5), s.keygen.secretKey()));
    auto cmul_ct = s.eval.rescale(s.eval.mulConst(ct, -2.25));
    auto cmul = s.eval.encoder().decode(
        s.eval.decrypt(cmul_ct, s.keygen.secretKey()));
    for (u64 i = 0; i < v.size(); ++i) {
        EXPECT_NEAR(cadd[i].real(), v[i] + 1.5, 1e-4);
        EXPECT_NEAR(cmul[i].real(), v[i] * -2.25, 1e-3);
    }
}

TEST(Ckks, HomomorphicMultiplicationWithRelin)
{
    auto &s = state();
    Rng rng(95);
    auto v1 = randomReals(s.ctx.n() / 2, rng);
    auto v2 = randomReals(s.ctx.n() / 2, rng);
    auto c1 = s.eval.encrypt(s.eval.encoder().encodeReal(v1, 3), s.pk);
    auto c2 = s.eval.encrypt(s.eval.encoder().encodeReal(v2, 3), s.pk);

    auto prod = s.eval.rescale(s.eval.mul(c1, c2, s.rlk));
    EXPECT_EQ(prod.level, 2u);
    auto got = s.eval.encoder().decode(
        s.eval.decrypt(prod, s.keygen.secretKey()));
    for (u64 i = 0; i < v1.size(); ++i)
        EXPECT_NEAR(got[i].real(), v1[i] * v2[i], 1e-2) << i;
}

TEST(Ckks, MultiplicationDepthChain)
{
    auto &s = state();
    Rng rng(96);
    auto v = randomReals(s.ctx.n() / 2, rng, 0.5, 1.0);
    auto ct = s.eval.encrypt(
        s.eval.encoder().encodeReal(v, s.ctx.maxLevel()), s.pk);

    // Square repeatedly: x -> x^2 -> x^4 -> x^8.
    auto cur = ct;
    std::vector<double> expect = v;
    for (int d = 0; d < 3; ++d) {
        cur = s.eval.rescale(s.eval.mul(cur, cur, s.rlk));
        for (auto &x : expect)
            x = x * x;
    }
    EXPECT_EQ(cur.level, s.ctx.maxLevel() - 3);
    auto got = s.eval.encoder().decode(
        s.eval.decrypt(cur, s.keygen.secretKey()));
    for (u64 i = 0; i < v.size(); ++i)
        EXPECT_NEAR(got[i].real(), expect[i], 5e-2) << i;
}

TEST(Ckks, LevelDownPreservesValues)
{
    auto &s = state();
    Rng rng(97);
    auto v = randomReals(s.ctx.n() / 2, rng);
    auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(v, 4), s.pk);
    auto down = s.eval.levelDown(ct, 1);
    EXPECT_EQ(down.level, 1u);
    auto got = s.eval.encoder().decode(
        s.eval.decrypt(down, s.keygen.secretKey()));
    for (u64 i = 0; i < v.size(); ++i)
        EXPECT_NEAR(got[i].real(), v[i], 1e-4);
}

TEST(Ckks, KeySwitchRoundTrip)
{
    // Decrypting with s after switching a polynomial encrypted under s²
    // is exactly what HMult relies on; verified indirectly above, and the
    // scale bookkeeping is verified here.
    auto &s = state();
    Rng rng(98);
    auto v = randomReals(s.ctx.n() / 2, rng);
    auto c1 = s.eval.encrypt(s.eval.encoder().encodeReal(v, 2), s.pk);
    auto prod = s.eval.mul(c1, c1, s.rlk);
    EXPECT_NEAR(prod.scale, c1.scale * c1.scale, 1.0);
    auto rescaled = s.eval.rescale(prod);
    EXPECT_NEAR(rescaled.scale,
                prod.scale / static_cast<double>(s.ctx.modValue(2)), 1.0);
}

TEST(CkksAlpha1, MultiplicationWorksWithUnitDigits)
{
    FheContext ctx(test::smallParamsAlpha1());
    KeyGenerator keygen(ctx, 777);
    auto pk = keygen.makePublicKey();
    auto rlk = keygen.makeRelinKey();
    Evaluator eval(ctx, 1000);

    Rng rng(99);
    auto v = randomReals(ctx.n() / 2, rng);
    auto ct = eval.encrypt(eval.encoder().encodeReal(v, 2), pk);
    auto sq = eval.rescale(eval.mul(ct, ct, rlk));
    auto got = eval.encoder().decode(eval.decrypt(sq, keygen.secretKey()));
    for (u64 i = 0; i < v.size(); ++i)
        EXPECT_NEAR(got[i].real(), v[i] * v[i], 1e-2) << i;
}

}  // namespace
}  // namespace crophe::fhe
