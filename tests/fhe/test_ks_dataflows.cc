/**
 * @file
 * Differential tests for the CiFlow key-switch dataflows and the
 * triple-hoisted BSGS strategy (DESIGN.md §15): every dataflow must be
 * bit-identical to the unfused exact library path across levels, digit
 * counts, backends and thread counts; the hoisting primitives must
 * reproduce keySwitchFused and rotate() exactly; the triple-hoisted
 * matvec must match a same-math oracle bit-for-bit and decrypt to the
 * reference within rounding noise. Suites carry the Kernel prefix so the
 * CI sanitizer job's gtest filter picks them up.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "fhe/automorphism.h"
#include "fhe/bconv.h"
#include "fhe/bsgs.h"
#include "fhe/ckks.h"
#include "fhe/kernels/kernels.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;
using test::smallParamsAlpha1;

std::vector<kernels::Backend>
availableBackends()
{
    std::vector<kernels::Backend> out = {kernels::Backend::Scalar};
    if (kernels::available(kernels::Backend::Avx2))
        out.push_back(kernels::Backend::Avx2);
    if (kernels::available(kernels::Backend::Avx512))
        out.push_back(kernels::Backend::Avx512);
    return out;
}

/** Restores the process-wide backend selection on scope exit. */
class BackendScope
{
  public:
    BackendScope() : saved_(kernels::activeBackend()) {}
    ~BackendScope() { kernels::setBackend(saved_); }

  private:
    kernels::Backend saved_;
};

RnsPoly
randomPoly(const FheContext &ctx, const std::vector<u32> &basis, Rng &rng,
           Rep rep = Rep::Eval)
{
    RnsPoly p(ctx, basis, Rep::Coeff);
    for (u32 i = 0; i < p.limbCount(); ++i) {
        const u64 q = p.mod(i).value();
        u64 *d = p.limb(i).data();
        for (u64 k = 0; k < p.n(); ++k)
            d[k] = rng.nextBounded(q);
    }
    if (rep == Rep::Eval)
        p.toEval();
    return p;
}

void
expectPolysEqual(const RnsPoly &got, const RnsPoly &want, const char *what)
{
    ASSERT_EQ(got.limbCount(), want.limbCount()) << what;
    ASSERT_EQ(got.rep(), want.rep()) << what;
    for (u32 i = 0; i < got.limbCount(); ++i) {
        const u64 *g = got.limb(i).data();
        const u64 *w = want.limb(i).data();
        for (u64 k = 0; k < got.n(); ++k)
            ASSERT_EQ(g[k], w[k]) << what << " limb " << i << " coeff " << k;
    }
}

u64
fnv1a(u64 h, u64 v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

u64
hashPoly(u64 h, const RnsPoly &p)
{
    for (u32 i = 0; i < p.limbCount(); ++i) {
        const u64 *d = p.limb(i).data();
        for (u64 k = 0; k < p.n(); ++k)
            h = fnv1a(h, d[k]);
    }
    return h;
}

// ---------------------------------------------------------------------------
// KeySwitchDataflow enum plumbing.
// ---------------------------------------------------------------------------

TEST(KernelKsDataflow, NamesAreStable)
{
    EXPECT_STREQ(keySwitchDataflowName(KeySwitchDataflow::Fused), "fused");
    EXPECT_STREQ(keySwitchDataflowName(KeySwitchDataflow::Unfused),
                 "unfused");
    EXPECT_STREQ(keySwitchDataflowName(KeySwitchDataflow::OutputStationary),
                 "ostat");
    EXPECT_STREQ(keySwitchDataflowName(KeySwitchDataflow::ReorderedModUp),
                 "reordup");
}

TEST(KernelKsDataflow, DispatcherRoutesConfiguredDataflow)
{
    const FheContext &ctx = smallContext();
    KeyGenerator keygen(ctx, 42);
    KswKey rk = keygen.makeRotationKey(1);
    Evaluator eval(ctx, 7);
    EXPECT_EQ(eval.keySwitchDataflow(), KeySwitchDataflow::Fused);

    Rng rng(9001);
    const u32 level = ctx.maxLevel();
    RnsPoly d = randomPoly(ctx, ctx.qBasis(level), rng);
    auto [want_b, want_a] = eval.keySwitchFused(d, level, rk);

    for (KeySwitchDataflow df :
         {KeySwitchDataflow::Fused, KeySwitchDataflow::Unfused,
          KeySwitchDataflow::OutputStationary,
          KeySwitchDataflow::ReorderedModUp}) {
        eval.setKeySwitchDataflow(df);
        EXPECT_EQ(eval.keySwitchDataflow(), df);
        auto [got_b, got_a] = eval.keySwitch(d, level, rk);
        expectPolysEqual(got_b, want_b, keySwitchDataflowName(df));
        expectPolysEqual(got_a, want_a, keySwitchDataflowName(df));
    }
}

// ---------------------------------------------------------------------------
// Every dataflow bit-identical to the unfused exact library path, across
// levels (and with them digit counts β = 1…ceil((L+1)/α)), both digit
// layouts (α = 2 and α = 1), every backend, and 1/2/8 threads.
// ---------------------------------------------------------------------------

TEST(KernelKsDataflow, AllDataflowsBitIdenticalAcrossLevelsBackendsThreads)
{
    BackendScope backend_scope;
    static FheContext ctx_alpha1(smallParamsAlpha1());
    const FheContext *contexts[] = {&smallContext(), &ctx_alpha1};
    Rng rng(9002);

    for (const FheContext *ctx : contexts) {
        KeyGenerator keygen(*ctx, 42);
        KswKey rk = keygen.makeRotationKey(1);
        Evaluator eval(*ctx, 7);

        for (u32 level : {u32(1), ctx->maxLevel()}) {
            RnsPoly d = randomPoly(*ctx, ctx->qBasis(level), rng);

            kernels::setBackend(kernels::Backend::Scalar);
            ThreadPool::setGlobalThreads(1);
            auto [want_b, want_a] = eval.keySwitchUnfused(d, level, rk);

            for (u32 threads : {1u, 2u, 8u}) {
                ThreadPool::setGlobalThreads(threads);
                for (kernels::Backend b : availableBackends()) {
                    kernels::setBackend(b);
                    auto [fb, fa] = eval.keySwitchFused(d, level, rk);
                    expectPolysEqual(fb, want_b, "fused");
                    expectPolysEqual(fa, want_a, "fused");
                    auto [ob, oa] =
                        eval.keySwitchOutputStationary(d, level, rk);
                    expectPolysEqual(ob, want_b, "ostat");
                    expectPolysEqual(oa, want_a, "ostat");
                    auto [rb, ra] = eval.keySwitchReorderedModUp(d, level, rk);
                    expectPolysEqual(rb, want_b, "reordup");
                    expectPolysEqual(ra, want_a, "reordup");
                }
            }
            ThreadPool::setGlobalThreads(0);
        }
    }
}

// ---------------------------------------------------------------------------
// Hoisting primitives: decomp+modup / inner product / rotate.
// ---------------------------------------------------------------------------

TEST(KernelHoisting, InnerProdPlusModDownMatchesKeySwitchFused)
{
    const FheContext &ctx = smallContext();
    KeyGenerator keygen(ctx, 42);
    KswKey rk = keygen.makeRotationKey(1);
    Evaluator eval(ctx, 7);
    Rng rng(9003);

    for (u32 level : {u32(1), ctx.maxLevel()}) {
        RnsPoly d = randomPoly(ctx, ctx.qBasis(level), rng);
        auto [want_b, want_a] = eval.keySwitchFused(d, level, rk);

        auto digits = eval.hoistedDecompModUp(d, level);
        ASSERT_EQ(digits.size(), ctx.digitCount(level));
        auto [ip_b, ip_a] = eval.hoistedInnerProd(digits, rk);
        auto [got_b, got_a] = modDownEvalPair(ctx, ip_b, ip_a, level);
        expectPolysEqual(got_b, want_b, "hoisted b");
        expectPolysEqual(got_a, want_a, "hoisted a");
    }
}

/**
 * Hoisted-rotate oracle built from the unfused seed primitives: ModUp
 * every digit via modUpDigit, permute the digits, inner product with
 * restricted key copies, coefficient-domain ModDown. Same dataflow as
 * Evaluator::hoistedRotate, independently coded path.
 *
 * Note hoisting is NOT bit-identical to rotate(): ψ carries sign flips,
 * and the exact BConv of a canonical representative is not odd-symmetric
 * — permuting after ModUp shifts the extended limbs by multiples of the
 * digit modulus versus ModUp-after-ψ. That lift ambiguity is absorbed by
 * key-switch noise (standard hoisting), so the check is oracle
 * bit-identity plus a decrypt-level comparison against rotate().
 */
Ciphertext
hoistedRotateOracle(const FheContext &ctx, const Evaluator &eval,
                    const Ciphertext &ct, i64 r, const KswKey &rk)
{
    const u32 level = ct.level;
    const u32 beta = ctx.digitCount(level);
    auto qp = ctx.qpBasis(level);
    const u64 g = galoisElementForRotation(r, ctx.n());

    RnsPoly a_coeff = ct.a;
    a_coeff.toCoeff();
    RnsPoly acc_b(ctx, qp, Rep::Eval);
    RnsPoly acc_a(ctx, qp, Rep::Eval);
    for (u32 j = 0; j < beta; ++j) {
        RnsPoly up = modUpDigit(ctx, a_coeff, j, level);
        up.toEval();
        RnsPoly rot = applyAutomorphism(up, g);
        RnsPoly kb = rk.b[j].restrictedTo(qp);
        RnsPoly ka = rk.a[j].restrictedTo(qp);
        kb.mulEwInplace(rot);
        ka.mulEwInplace(rot);
        acc_b.addInplace(kb);
        acc_a.addInplace(ka);
    }
    acc_b.toCoeff();
    acc_a.toCoeff();
    RnsPoly ks_b = modDown(ctx, acc_b, level);
    RnsPoly ks_a = modDown(ctx, acc_a, level);
    ks_b.toEval();
    ks_a.toEval();

    Ciphertext out;
    out.level = ct.level;
    out.scale = ct.scale;
    out.b = applyAutomorphism(ct.b, g);
    out.b.addInplace(ks_b);
    out.a = std::move(ks_a);
    return out;
}

TEST(KernelHoisting, HoistedRotateMatchesOracleAndDecryptsLikeRotate)
{
    BackendScope backend_scope;
    const FheContext &ctx = smallContext();
    KeyGenerator keygen(ctx, 42);
    PublicKey pk = keygen.makePublicKey();
    SecretKey sk = keygen.secretKey();
    Evaluator eval(ctx, 7);

    const u64 slots = ctx.n() / 2;
    std::vector<double> v(slots);
    for (u64 i = 0; i < v.size(); ++i)
        v[i] = (i % 13) * 0.1 - 0.5;

    for (u32 level : {u32(2), ctx.maxLevel()}) {
        Ciphertext ct =
            eval.encrypt(eval.encoder().encodeReal(v, level), pk);
        auto digits = eval.hoistedDecompModUp(ct.a, ct.level);
        for (i64 r : {i64(1), i64(3), i64(7)}) {
            KswKey rk = keygen.makeRotationKey(r);
            Ciphertext want = hoistedRotateOracle(ctx, eval, ct, r, rk);
            for (kernels::Backend b : availableBackends()) {
                kernels::setBackend(b);
                Ciphertext got = eval.hoistedRotate(ct, digits, r, rk);
                ASSERT_EQ(got.level, want.level);
                ASSERT_EQ(got.scale, want.scale);
                expectPolysEqual(got.b, want.b, "hoistedRotate b");
                expectPolysEqual(got.a, want.a, "hoistedRotate a");
            }
            // Functional equivalence with the eager rotation.
            auto dh = eval.encoder().decode(eval.decrypt(want, sk));
            auto de = eval.encoder().decode(
                eval.decrypt(eval.rotate(ct, r, rk), sk));
            for (u64 i = 0; i < slots; ++i)
                EXPECT_NEAR(dh[i].real(), de[i].real(), 2e-2)
                    << "level " << level << " r " << r << " slot " << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Triple-hoisted BSGS.
// ---------------------------------------------------------------------------

struct BsgsState
{
    const FheContext &ctx;
    KeyGenerator keygen;
    PublicKey pk;
    Evaluator eval;

    BsgsState()
        : ctx(smallContext()), keygen(ctx, 31415), pk(keygen.makePublicKey()),
          eval(ctx, 13)
    {
    }

    BsgsKeys
    keysFor(u32 n1, u32 n2, RotStrategy strategy, u32 r_hyb)
    {
        BsgsKeys keys;
        for (i64 r : requiredRotations(n1, n2, strategy, r_hyb))
            keys.rot.emplace(r, keygen.makeRotationKey(r));
        return keys;
    }
};

BsgsState &
bsgsState()
{
    static BsgsState s;
    return s;
}

TEST(KernelTripleHoistedBsgs, RequiredRotationsAndCostMatchHoisting)
{
    EXPECT_EQ(requiredRotations(4, 2, RotStrategy::TripleHoisted, 0),
              requiredRotations(4, 2, RotStrategy::Hoisting, 0));
    auto cost = babyStepCost(8, RotStrategy::TripleHoisted, 0);
    EXPECT_EQ(cost.modUpDown, 1u);
    EXPECT_EQ(cost.distinctEvk, 7u);
}

TEST(KernelTripleHoistedBsgs, BabyStepsMatchOracleAndDecryptLikeHoisting)
{
    auto &s = bsgsState();
    const u32 n1 = 4;
    const u64 slots = s.ctx.n() / 2;
    std::vector<double> v(slots);
    for (u64 i = 0; i < v.size(); ++i)
        v[i] = (i % 11) * 0.2 - 1.0;
    auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(v, 3), s.pk);

    auto keys = s.keysFor(n1, 1, RotStrategy::Hoisting, 0);
    auto eager = babySteps(s.eval, ct, n1, RotStrategy::Hoisting, 0, keys);
    auto got =
        babySteps(s.eval, ct, n1, RotStrategy::TripleHoisted, 0, keys);
    ASSERT_EQ(got.size(), eager.size());
    for (u32 i = 1; i < n1; ++i) {
        // Bit-for-bit against the unfused-primitive oracle...
        Ciphertext want =
            hoistedRotateOracle(s.ctx, s.eval, ct, i, keys.rot.at(i));
        expectPolysEqual(got[i].b, want.b, "baby b");
        expectPolysEqual(got[i].a, want.a, "baby a");
        // ...and decrypt-equivalent to the eager rotation.
        auto dh = s.eval.encoder().decode(
            s.eval.decrypt(got[i], s.keygen.secretKey()));
        auto de = s.eval.encoder().decode(
            s.eval.decrypt(eager[i], s.keygen.secretKey()));
        for (u64 k = 0; k < slots; ++k)
            EXPECT_NEAR(dh[k].real(), de[k].real(), 2e-2)
                << "i=" << i << " slot " << k;
    }
}

/**
 * Same-math oracle for the triple-hoisted matvec, built from the unfused
 * seed primitives (modUpDigit + restrictedTo key copies + coefficient-
 * domain modDown) instead of the fused pipeline: same deferred-ModDown
 * dataflow, independently coded path. Bit-for-bit agreement checks the
 * production path's fused kernels AND its accumulation order at once.
 */
Ciphertext
tripleHoistedOracle(BsgsState &s,
                    const std::vector<std::vector<double>> &diagonals,
                    const Ciphertext &ct, u32 n1, u32 n2, BsgsKeys &keys)
{
    const FheContext &ctx = s.ctx;
    const Encoder &enc = s.eval.encoder();
    const u64 slots = ctx.n() / 2;

    // Baby steps: unfused per-digit ModUp of ct.a, permute, inner
    // product with restricted key copies, coefficient-domain ModDown.
    const u32 level = ct.level;
    const u32 beta = ctx.digitCount(level);
    auto qp = ctx.qpBasis(level);
    RnsPoly a_coeff = ct.a;
    a_coeff.toCoeff();
    std::vector<RnsPoly> digits;
    for (u32 j = 0; j < beta; ++j) {
        RnsPoly up = modUpDigit(ctx, a_coeff, j, level);
        up.toEval();
        digits.push_back(std::move(up));
    }

    auto innerProd = [&](const std::vector<RnsPoly> &ds, const KswKey &key) {
        RnsPoly acc_b(ctx, qp, Rep::Eval);
        RnsPoly acc_a(ctx, qp, Rep::Eval);
        for (u32 j = 0; j < beta; ++j) {
            RnsPoly kb = key.b[j].restrictedTo(qp);
            RnsPoly ka = key.a[j].restrictedTo(qp);
            kb.mulEwInplace(ds[j]);
            ka.mulEwInplace(ds[j]);
            acc_b.addInplace(kb);
            acc_a.addInplace(ka);
        }
        return std::make_pair(std::move(acc_b), std::move(acc_a));
    };
    auto modDownPair = [&](const RnsPoly &b, const RnsPoly &a) {
        RnsPoly bc = b;
        bc.toCoeff();
        RnsPoly ac = a;
        ac.toCoeff();
        RnsPoly db = modDown(ctx, bc, level);
        RnsPoly da = modDown(ctx, ac, level);
        db.toEval();
        da.toEval();
        return std::make_pair(std::move(db), std::move(da));
    };

    std::vector<Ciphertext> cts(n1);
    cts[0] = ct;
    for (u32 i = 1; i < n1; ++i) {
        const u64 g = galoisElementForRotation(i, ctx.n());
        std::vector<RnsPoly> rot;
        for (const RnsPoly &d : digits)
            rot.push_back(applyAutomorphism(d, g));
        auto [ip_b, ip_a] = innerProd(rot, keys.rot.at(i));
        auto [ks_b, ks_a] = modDownPair(ip_b, ip_a);
        cts[i].level = ct.level;
        cts[i].scale = ct.scale;
        cts[i].b = applyAutomorphism(ct.b, g);
        cts[i].b.addInplace(ks_b);
        cts[i].a = std::move(ks_a);
    }

    // Giant steps with the single deferred ModDown.
    bool have_acc = false;
    RnsPoly acc_b, acc_a;
    bool have_out = false;
    Ciphertext out;
    auto rotateRight = [&](const std::vector<double> &vec, u64 amount) {
        std::vector<double> r(vec.size());
        amount %= vec.size();
        for (u64 i = 0; i < vec.size(); ++i)
            r[(i + amount) % vec.size()] = vec[i];
        return r;
    };
    for (u32 j = 0; j < n2; ++j) {
        bool have_r = false;
        Ciphertext r;
        for (u32 i = 0; i < n1; ++i) {
            u64 d = static_cast<u64>(n1) * j + i;
            auto diag = rotateRight(diagonals[d], static_cast<u64>(n1) * j);
            (void)slots;
            Plaintext pt = enc.encodeReal(diag, cts[i].level);
            Ciphertext term = s.eval.mulPlain(cts[i], pt);
            if (!have_r) {
                r = std::move(term);
                have_r = true;
            } else {
                r = s.eval.add(r, term);
            }
        }
        if (j > 0) {
            const i64 stride = static_cast<i64>(n1) * j;
            const u64 g = galoisElementForRotation(stride, ctx.n());
            RnsPoly ra_coeff = r.a;
            ra_coeff.toCoeff();
            std::vector<RnsPoly> gds;
            for (u32 k = 0; k < beta; ++k) {
                RnsPoly up = modUpDigit(ctx, ra_coeff, k, level);
                up.toEval();
                gds.push_back(applyAutomorphism(up, g));
            }
            auto [ip_b, ip_a] = innerProd(gds, keys.rot.at(stride));
            if (!have_acc) {
                acc_b = std::move(ip_b);
                acc_a = std::move(ip_a);
                have_acc = true;
            } else {
                acc_b.addInplace(ip_b);
                acc_a.addInplace(ip_a);
            }
            r.b = applyAutomorphism(r.b, g);
            r.a = RnsPoly(ctx, ctx.qBasis(r.level), Rep::Eval);
        }
        if (!have_out) {
            out = std::move(r);
            have_out = true;
        } else {
            out = s.eval.add(out, r);
        }
    }
    if (have_acc) {
        auto [md_b, md_a] = modDownPair(acc_b, acc_a);
        out.b.addInplace(md_b);
        out.a.addInplace(md_a);
    }
    return s.eval.rescale(out);
}

TEST(KernelTripleHoistedBsgs, MatVecMatchesSameMathOracleBitForBit)
{
    BackendScope backend_scope;
    auto &s = bsgsState();
    const u32 n1 = 2, n2 = 2;
    const u64 dim = n1 * n2;
    Rng rng(9004);

    std::vector<std::vector<double>> m(dim, std::vector<double>(dim));
    std::vector<double> x(dim);
    for (auto &row : m)
        for (auto &e : row)
            e = rng.nextDouble() * 2 - 1;
    for (auto &e : x)
        e = rng.nextDouble() * 2 - 1;

    const u64 slots = s.ctx.n() / 2;
    std::vector<double> x_tiled(slots);
    for (u64 i = 0; i < slots; ++i)
        x_tiled[i] = x[i % dim];
    auto diags = matrixDiagonals(m, slots);

    auto keys = s.keysFor(n1, n2, RotStrategy::TripleHoisted, 0);
    auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(x_tiled, 3), s.pk);

    Ciphertext want = tripleHoistedOracle(s, diags, ct, n1, n2, keys);
    for (u32 threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        for (kernels::Backend b : availableBackends()) {
            kernels::setBackend(b);
            Ciphertext got = ptMatVecMult(s.eval, ct, diags, n1, n2,
                                          RotStrategy::TripleHoisted, 0,
                                          keys);
            expectPolysEqual(got.b, want.b, "triple-hoisted matvec b");
            expectPolysEqual(got.a, want.a, "triple-hoisted matvec a");
        }
    }
    ThreadPool::setGlobalThreads(0);

    // And the deferred-ModDown result still decrypts to M·x within the
    // usual CKKS tolerance (the deferral shifts each coefficient by at
    // most n2-1, far below the scale).
    auto expect = matVecRef(m, x);
    auto got_dec =
        s.eval.encoder().decode(s.eval.decrypt(want, s.keygen.secretKey()));
    for (u64 i = 0; i < dim; ++i)
        EXPECT_NEAR(got_dec[i].real(), expect[i], 5e-2) << "slot " << i;
}

// ---------------------------------------------------------------------------
// Golden FNV limb-trace hashes: integer-domain flows only (no FP encode),
// so the constants are stable across platforms. All key-switch dataflows
// must land on the same hash; the hoisted rotate must land on rotate()'s.
// ---------------------------------------------------------------------------

TEST(KernelKsDataflow, GoldenLimbTraceHashes)
{
    BackendScope backend_scope;
    kernels::setBackend(kernels::Backend::Scalar);
    const FheContext &ctx = smallContext();
    KeyGenerator keygen(ctx, 42);
    KswKey rk = keygen.makeRotationKey(1);
    Evaluator eval(ctx, 7);
    Rng rng(8);

    const u32 level = ctx.maxLevel();
    RnsPoly d = randomPoly(ctx, ctx.qBasis(level), rng);

    auto hashPair = [](const std::pair<RnsPoly, RnsPoly> &p) {
        u64 h = 1469598103934665603ull;
        h = hashPoly(h, p.first);
        return hashPoly(h, p.second);
    };

    const u64 kGolden = 12148749097251079694ull;
    EXPECT_EQ(hashPair(eval.keySwitchFused(d, level, rk)), kGolden);
    EXPECT_EQ(hashPair(eval.keySwitchUnfused(d, level, rk)), kGolden);
    EXPECT_EQ(hashPair(eval.keySwitchOutputStationary(d, level, rk)),
              kGolden);
    EXPECT_EQ(hashPair(eval.keySwitchReorderedModUp(d, level, rk)), kGolden);

    auto digits = eval.hoistedDecompModUp(d, level);
    auto [ip_b, ip_a] = eval.hoistedInnerProd(digits, rk);
    EXPECT_EQ(hashPair(modDownEvalPair(ctx, ip_b, ip_a, level)), kGolden);
}

}  // namespace
}  // namespace crophe::fhe
