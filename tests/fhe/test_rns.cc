#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/rns.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;
using test::smallParams;

TEST(FheContext, BasisLayout)
{
    const FheContext &ctx = smallContext();
    EXPECT_EQ(ctx.n(), 256u);
    EXPECT_EQ(ctx.maxLevel(), 4u);
    EXPECT_EQ(ctx.qCount(), 5u);
    EXPECT_EQ(ctx.pCount(), 2u);
    EXPECT_EQ(ctx.dnum(), 3u);  // ceil(5/2)

    auto qb = ctx.qBasis(2);
    EXPECT_EQ(qb, (std::vector<u32>{0, 1, 2}));
    auto pb = ctx.pBasis();
    EXPECT_EQ(pb, (std::vector<u32>{5, 6}));
    auto qpb = ctx.qpBasis(1);
    EXPECT_EQ(qpb, (std::vector<u32>{0, 1, 5, 6}));
}

TEST(FheContext, DigitLayout)
{
    const FheContext &ctx = smallContext();
    EXPECT_EQ(ctx.digitCount(4), 3u);
    EXPECT_EQ(ctx.digitCount(1), 1u);
    EXPECT_EQ(ctx.digitLimbs(0, 4), (std::vector<u32>{0, 1}));
    EXPECT_EQ(ctx.digitLimbs(1, 4), (std::vector<u32>{2, 3}));
    EXPECT_EQ(ctx.digitLimbs(2, 4), (std::vector<u32>{4}));  // partial digit
}

TEST(FheContext, ModuliAreDistinctAndNttFriendly)
{
    const FheContext &ctx = smallContext();
    for (u32 i = 0; i < ctx.modulusCount(); ++i) {
        EXPECT_EQ((ctx.modValue(i) - 1) % (2 * ctx.n()), 0u);
        for (u32 j = i + 1; j < ctx.modulusCount(); ++j)
            EXPECT_NE(ctx.modValue(i), ctx.modValue(j));
    }
}

TEST(RnsPoly, AddSubNegateRoundTrip)
{
    const FheContext &ctx = smallContext();
    Rng rng(40);
    RnsPoly a(ctx, ctx.qBasis(2));
    RnsPoly b(ctx, ctx.qBasis(2));
    a.uniformRandom(rng);
    b.uniformRandom(rng);

    RnsPoly c = a;
    c.addInplace(b);
    c.subInplace(b);
    for (u32 l = 0; l < a.limbCount(); ++l)
        EXPECT_EQ(c.limbVec(l), a.limbVec(l));

    RnsPoly d = a;
    d.negateInplace();
    d.negateInplace();
    for (u32 l = 0; l < a.limbCount(); ++l)
        EXPECT_EQ(d.limbVec(l), a.limbVec(l));
}

TEST(RnsPoly, EvalMultiplyMatchesCoeffConvolution)
{
    const FheContext &ctx = smallContext();
    Rng rng(41);
    RnsPoly a(ctx, ctx.qBasis(0));
    RnsPoly b(ctx, ctx.qBasis(0));
    a.uniformRandom(rng);
    b.uniformRandom(rng);

    auto expect = polyMulNaive(a.limbVec(0), b.limbVec(0), ctx.mod(0));

    a.toEval();
    b.toEval();
    a.mulEwInplace(b);
    a.toCoeff();
    EXPECT_EQ(a.limbVec(0), expect);
}

TEST(RnsPoly, CrtReconstructionOfSmallConstant)
{
    const FheContext &ctx = smallContext();
    RnsPoly a(ctx, ctx.qBasis(3));
    // Set coefficient 5 to the value 123456789 in all limbs.
    for (u32 l = 0; l < a.limbCount(); ++l)
        a.limb(l)[5] = ctx.mod(l).reduce64(123456789ull);
    BigUInt v = a.reconstructCoeff(5);
    EXPECT_EQ(v.modSmall(~0ull), 123456789ull);
    EXPECT_TRUE(a.reconstructCoeff(0).isZero());
}

TEST(RnsPoly, CrtReconstructionOfRandomBigValue)
{
    const FheContext &ctx = smallContext();
    Rng rng(42);
    // Pick a value below Q via limbs of a known big integer: v = r0 + r1*2^64.
    BigUInt v = BigUInt::fromWords({rng.next(), rng.next() >> 40});
    RnsPoly a(ctx, ctx.qBasis(4));
    for (u32 l = 0; l < a.limbCount(); ++l)
        a.limb(l)[0] = v.modSmall(ctx.modValue(l));
    BigUInt got = a.reconstructCoeff(0);
    EXPECT_TRUE(got == v) << got.toHex() << " vs " << v.toHex();
}

TEST(RnsPoly, RestrictedToSelectsLimbs)
{
    const FheContext &ctx = smallContext();
    Rng rng(43);
    RnsPoly a(ctx, ctx.qpBasis(2));
    a.uniformRandom(rng);
    RnsPoly q_only = a.restrictedTo(ctx.qBasis(2));
    EXPECT_EQ(q_only.limbCount(), 3u);
    for (u32 l = 0; l < 3; ++l)
        EXPECT_EQ(q_only.limbVec(l), a.limbVec(l));
    RnsPoly p_only = a.restrictedTo(ctx.pBasis());
    EXPECT_EQ(p_only.limbVec(0), a.limbVec(3));
    EXPECT_EQ(p_only.limbVec(1), a.limbVec(4));
}

TEST(RnsPoly, MulConstMatchesScalar)
{
    const FheContext &ctx = smallContext();
    Rng rng(44);
    RnsPoly a(ctx, ctx.qBasis(1));
    a.uniformRandom(rng);
    RnsPoly b = a;
    b.mulConstInplace(7);
    for (u32 l = 0; l < a.limbCount(); ++l) {
        const Modulus &m = a.mod(l);
        for (u64 i = 0; i < ctx.n(); ++i)
            EXPECT_EQ(b.limb(l)[i], m.mul(a.limb(l)[i], 7));
    }
}

}  // namespace
}  // namespace crophe::fhe
