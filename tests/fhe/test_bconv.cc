#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/bconv.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;

TEST(BaseConverter, ExactForSmallValues)
{
    const FheContext &ctx = smallContext();
    // Source: digit {q0, q1}; target: the p basis.
    BaseConverter conv(ctx, {0, 1}, ctx.pBasis());

    RnsPoly in(ctx, {0, 1}, Rep::Coeff);
    u64 value = 987654321987ull;
    in.limb(0)[3] = ctx.mod(0).reduce64(value);
    in.limb(1)[3] = ctx.mod(1).reduce64(value);

    RnsPoly out = conv.convert(in);
    for (u32 j = 0; j < out.limbCount(); ++j)
        EXPECT_EQ(out.limb(j)[3], out.mod(j).reduce64(value));
}

TEST(BaseConverter, ExactForRandomValuesBelowM)
{
    const FheContext &ctx = smallContext();
    Rng rng(50);
    BaseConverter conv(ctx, {0, 1}, {2, 3, 5});

    // Random values below q0*q1, placed via CRT residues.
    for (int trial = 0; trial < 20; ++trial) {
        BigUInt v = BigUInt::fromWords({rng.next(), rng.nextBounded(1 << 16)});
        BigUInt m = productOf({ctx.modValue(0), ctx.modValue(1)});
        while (!(v < m))
            v = v.half();

        RnsPoly in(ctx, {0, 1}, Rep::Coeff);
        in.limb(0)[0] = v.modSmall(ctx.modValue(0));
        in.limb(1)[0] = v.modSmall(ctx.modValue(1));
        RnsPoly out = conv.convert(in);
        for (u32 j = 0; j < out.limbCount(); ++j)
            EXPECT_EQ(out.limb(j)[0], v.modSmall(out.mod(j).value()));
    }
}

TEST(BaseConverter, FullPolynomialConversion)
{
    const FheContext &ctx = smallContext();
    Rng rng(51);
    BaseConverter conv(ctx, ctx.qBasis(2), ctx.pBasis());

    RnsPoly in(ctx, ctx.qBasis(2), Rep::Coeff);
    in.uniformRandom(rng);
    RnsPoly out = conv.convert(in);

    // Validate a sample of coefficients against BigUInt reconstruction.
    for (u64 c : {0ull, 1ull, 17ull, 255ull}) {
        BigUInt v = in.reconstructCoeff(c);
        for (u32 j = 0; j < out.limbCount(); ++j)
            EXPECT_EQ(out.limb(j)[c], v.modSmall(out.mod(j).value()))
                << "coeff " << c;
    }
}

TEST(ModUp, DigitExtensionPreservesValueModEverything)
{
    const FheContext &ctx = smallContext();
    Rng rng(52);
    const u32 level = 4;
    RnsPoly d(ctx, ctx.qBasis(level), Rep::Coeff);
    d.uniformRandom(rng);

    for (u32 j = 0; j < ctx.digitCount(level); ++j) {
        RnsPoly up = modUpDigit(ctx, d, j, level);
        EXPECT_EQ(up.basis(), ctx.qpBasis(level));

        auto digit = ctx.digitLimbs(j, level);
        RnsPoly digit_poly = d.restrictedTo(digit);
        for (u64 c : {0ull, 7ull, 100ull}) {
            BigUInt v = digit_poly.reconstructCoeff(c);
            for (u32 k = 0; k < up.limbCount(); ++k)
                EXPECT_EQ(up.limb(k)[c], v.modSmall(up.mod(k).value()))
                    << "digit " << j << " coeff " << c;
        }
    }
}

TEST(ModDown, DividesByPWithUnitError)
{
    const FheContext &ctx = smallContext();
    Rng rng(53);
    const u32 level = 2;

    // Build x = y·P + r with y < Q known; then ModDown(x) should be y
    // (up to rounding of r/P, i.e. off by at most one).
    RnsPoly y(ctx, ctx.qBasis(level), Rep::Coeff);
    y.uniformRandom(rng);

    RnsPoly x(ctx, ctx.qpBasis(level), Rep::Coeff);
    for (u64 c = 0; c < ctx.n(); ++c) {
        BigUInt yv = y.reconstructCoeff(c);
        BigUInt xv = yv;
        // xv = yv * P (word-by-word multiply by each p prime).
        for (u32 pi = 0; pi < ctx.pCount(); ++pi)
            xv.mulSmallInplace(ctx.modValue(ctx.qCount() + pi));
        for (u32 k = 0; k < x.limbCount(); ++k)
            x.limb(k)[c] = xv.modSmall(x.mod(k).value());
    }

    RnsPoly got = modDown(ctx, x, level);
    for (u64 c : {0ull, 3ull, 200ull}) {
        for (u32 k = 0; k < got.limbCount(); ++k)
            EXPECT_EQ(got.limb(k)[c], y.limb(k)[c]) << "coeff " << c;
    }
}

TEST(Rescale, DividesByLastPrime)
{
    const FheContext &ctx = smallContext();
    const u32 level = 3;

    // x = y * q_level exactly; rescale must return y.
    Rng rng(54);
    RnsPoly y(ctx, ctx.qBasis(level - 1), Rep::Coeff);
    y.uniformRandom(rng);

    RnsPoly x(ctx, ctx.qBasis(level), Rep::Coeff);
    u64 ql = ctx.modValue(level);
    for (u64 c = 0; c < ctx.n(); ++c) {
        BigUInt yv = y.reconstructCoeff(c);
        BigUInt xv = yv;
        xv.mulSmallInplace(ql);
        for (u32 k = 0; k < x.limbCount(); ++k)
            x.limb(k)[c] = xv.modSmall(x.mod(k).value());
    }

    RnsPoly got = rescalePoly(ctx, x, level);
    for (u32 k = 0; k < got.limbCount(); ++k)
        EXPECT_EQ(got.limbVec(k), y.limbVec(k));
}

}  // namespace
}  // namespace crophe::fhe
