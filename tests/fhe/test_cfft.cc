#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fhe/cfft.h"

namespace crophe::fhe {
namespace {

std::vector<Cplx>
randomSlots(u64 count, Rng &rng)
{
    std::vector<Cplx> v(count);
    for (auto &z : v)
        z = Cplx(rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1);
    return v;
}

double
maxErr(const std::vector<Cplx> &a, const std::vector<Cplx> &b)
{
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

TEST(SpecialFft, RoundTripIsIdentity)
{
    Rng rng(60);
    for (u64 n : {8ull, 64ull, 512ull}) {
        SpecialFft fft(n);
        auto z = randomSlots(fft.slots(), rng);
        auto w = z;
        fft.embedInverse(w);
        fft.embed(w);
        EXPECT_LT(maxErr(z, w), 1e-9) << "n=" << n;
    }
}

TEST(SpecialFft, EmbedMatchesDirectEvaluation)
{
    Rng rng(61);
    const u64 n = 64;
    SpecialFft fft(n);

    // Random real coefficient vector; pack as half-complex and embed.
    std::vector<double> coeffs(n);
    for (auto &c : coeffs)
        c = rng.nextDouble() * 2 - 1;

    std::vector<Cplx> vals(n / 2);
    for (u64 j = 0; j < n / 2; ++j)
        vals[j] = Cplx(coeffs[j], coeffs[j + n / 2]);
    fft.embed(vals);

    auto expect = embedDirect(coeffs);
    EXPECT_LT(maxErr(vals, expect), 1e-9);
}

TEST(SpecialFft, InverseMatchesDirectInverse)
{
    Rng rng(62);
    const u64 n = 32;
    SpecialFft fft(n);

    auto z = randomSlots(n / 2, rng);
    auto w = z;
    fft.embedInverse(w);

    auto coeffs = embedInverseDirect(z, n);
    for (u64 j = 0; j < n / 2; ++j) {
        EXPECT_NEAR(w[j].real(), coeffs[j], 1e-9);
        EXPECT_NEAR(w[j].imag(), coeffs[j + n / 2], 1e-9);
    }
}

TEST(SpecialFft, DirectPairIsConsistent)
{
    Rng rng(63);
    const u64 n = 16;
    auto z = randomSlots(n / 2, rng);
    auto coeffs = embedInverseDirect(z, n);
    auto back = embedDirect(coeffs);
    EXPECT_LT(maxErr(z, back), 1e-9);
}

TEST(SpecialFft, EmbeddingIsRingHomomorphismForAddition)
{
    Rng rng(64);
    const u64 n = 64;
    SpecialFft fft(n);
    auto z1 = randomSlots(n / 2, rng);
    auto z2 = randomSlots(n / 2, rng);

    auto w1 = z1, w2 = z2;
    fft.embedInverse(w1);
    fft.embedInverse(w2);
    std::vector<Cplx> sum(n / 2);
    for (u64 i = 0; i < n / 2; ++i)
        sum[i] = w1[i] + w2[i];
    fft.embed(sum);
    for (u64 i = 0; i < n / 2; ++i)
        EXPECT_LT(std::abs(sum[i] - (z1[i] + z2[i])), 1e-9);
}

}  // namespace
}  // namespace crophe::fhe
