#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/bsgs.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;

struct BsgsFixtureState
{
    const FheContext &ctx;
    KeyGenerator keygen;
    PublicKey pk;
    Evaluator eval;

    BsgsFixtureState()
        : ctx(smallContext()), keygen(ctx, 31415), pk(keygen.makePublicKey()),
          eval(ctx, 13)
    {
    }

    BsgsKeys
    keysFor(u32 n1, u32 n2, RotStrategy strategy, u32 r_hyb)
    {
        BsgsKeys keys;
        for (i64 r : requiredRotations(n1, n2, strategy, r_hyb))
            keys.rot.emplace(r, keygen.makeRotationKey(r));
        return keys;
    }
};

BsgsFixtureState &
state()
{
    static BsgsFixtureState s;
    return s;
}

TEST(Bsgs, RequiredRotationsPerStrategy)
{
    auto min_ks = requiredRotations(4, 2, RotStrategy::MinKs, 0);
    EXPECT_EQ(min_ks, (std::vector<i64>{1, 4}));

    auto hoist = requiredRotations(4, 2, RotStrategy::Hoisting, 0);
    EXPECT_EQ(hoist, (std::vector<i64>{1, 2, 3, 4}));

    auto hybrid = requiredRotations(4, 2, RotStrategy::Hybrid, 2);
    EXPECT_EQ(hybrid, (std::vector<i64>{1, 2, 4}));
}

TEST(Bsgs, BabyStepCostEndpoints)
{
    const u32 n1 = 8;
    auto min_ks = babyStepCost(n1, RotStrategy::MinKs, 0);
    EXPECT_EQ(min_ks.modUpDown, n1 - 1);
    EXPECT_EQ(min_ks.distinctEvk, 1u);

    auto hoist = babyStepCost(n1, RotStrategy::Hoisting, 0);
    EXPECT_EQ(hoist.modUpDown, 1u);
    EXPECT_EQ(hoist.distinctEvk, n1 - 1);

    // Hybrid endpoints reduce to the pure schemes.
    auto h1 = babyStepCost(n1, RotStrategy::Hybrid, 1);
    EXPECT_EQ(h1.modUpDown, min_ks.modUpDown);
    EXPECT_EQ(h1.distinctEvk, min_ks.distinctEvk);
    auto hn = babyStepCost(n1, RotStrategy::Hybrid, n1);
    EXPECT_EQ(hn.modUpDown, hoist.modUpDown);
    EXPECT_EQ(hn.distinctEvk, hoist.distinctEvk);
}

TEST(Bsgs, HybridCostInterpolatesMonotonically)
{
    const u32 n1 = 16;
    u32 prev_pairs = ~0u;
    u32 prev_evk = 0;
    for (u32 r = 1; r <= n1; r *= 2) {
        auto c = babyStepCost(n1, RotStrategy::Hybrid, r);
        EXPECT_LE(c.modUpDown, prev_pairs) << "r=" << r;
        EXPECT_GE(c.distinctEvk, prev_evk) << "r=" << r;
        prev_pairs = c.modUpDown;
        prev_evk = c.distinctEvk;
    }
}

TEST(Bsgs, BabyStepsAgreeAcrossStrategies)
{
    auto &s = state();
    const u32 n1 = 4;
    std::vector<double> v(s.ctx.n() / 2);
    for (u64 i = 0; i < v.size(); ++i)
        v[i] = (i % 11) * 0.2 - 1.0;
    auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(v, 3), s.pk);

    auto run = [&](RotStrategy st, u32 r_hyb) {
        auto keys = s.keysFor(n1, 1, st, r_hyb);
        auto steps = babySteps(s.eval, ct, n1, st, r_hyb, keys);
        std::vector<std::vector<double>> out;
        for (auto &c : steps) {
            auto dec = s.eval.encoder().decode(
                s.eval.decrypt(c, s.keygen.secretKey()));
            std::vector<double> reals(dec.size());
            for (u64 i = 0; i < dec.size(); ++i)
                reals[i] = dec[i].real();
            out.push_back(std::move(reals));
        }
        return out;
    };

    auto ref = run(RotStrategy::MinKs, 0);
    auto hoist = run(RotStrategy::Hoisting, 0);
    auto hybrid = run(RotStrategy::Hybrid, 2);

    const u64 slots = s.ctx.n() / 2;
    for (u32 i = 0; i < n1; ++i) {
        for (u64 k = 0; k < slots; ++k) {
            double expect = v[(k + i) % slots];
            EXPECT_NEAR(ref[i][k], expect, 2e-2) << "MinKs i=" << i;
            EXPECT_NEAR(hoist[i][k], expect, 2e-2) << "Hoist i=" << i;
            EXPECT_NEAR(hybrid[i][k], expect, 2e-2) << "Hybrid i=" << i;
        }
    }
}

TEST(Bsgs, PtMatVecMultMatchesReference)
{
    auto &s = state();
    const u32 n1 = 2, n2 = 2;
    const u64 dim = n1 * n2;
    Rng rng(110);

    std::vector<std::vector<double>> m(dim, std::vector<double>(dim));
    std::vector<double> x(dim);
    for (auto &row : m)
        for (auto &e : row)
            e = rng.nextDouble() * 2 - 1;
    for (auto &e : x)
        e = rng.nextDouble() * 2 - 1;

    // Tile x across all slots.
    const u64 slots = s.ctx.n() / 2;
    std::vector<double> x_tiled(slots);
    for (u64 i = 0; i < slots; ++i)
        x_tiled[i] = x[i % dim];

    auto diags = matrixDiagonals(m, slots);
    auto expect = matVecRef(m, x);

    for (RotStrategy st :
         {RotStrategy::MinKs, RotStrategy::Hoisting, RotStrategy::Hybrid}) {
        u32 r_hyb = st == RotStrategy::Hybrid ? 2 : 0;
        auto keys = s.keysFor(n1, n2, st, r_hyb);
        auto ct = s.eval.encrypt(s.eval.encoder().encodeReal(x_tiled, 3), s.pk);
        auto out = ptMatVecMult(s.eval, ct, diags, n1, n2, st, r_hyb, keys);
        auto got = s.eval.encoder().decode(
            s.eval.decrypt(out, s.keygen.secretKey()));
        for (u64 i = 0; i < dim; ++i)
            EXPECT_NEAR(got[i].real(), expect[i], 5e-2)
                << "strategy=" << static_cast<int>(st) << " i=" << i;
    }
}

}  // namespace
}  // namespace crophe::fhe
