#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/automorphism.h"
#include "fhe/encoding.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;

TEST(Automorphism, GaloisElements)
{
    const u64 n = 256;
    EXPECT_EQ(galoisElementForRotation(0, n), 1u);
    EXPECT_EQ(galoisElementForRotation(1, n), 5u);
    EXPECT_EQ(galoisElementForRotation(2, n), 25u);
    // Negative rotations wrap within the group of order n/2.
    EXPECT_EQ(galoisElementForRotation(-1, n),
              galoisElementForRotation(static_cast<i64>(n / 2) - 1, n));
    EXPECT_EQ(galoisElementForConjugation(n), 2 * n - 1);
}

TEST(Automorphism, CoeffPermutationIsBijective)
{
    const FheContext &ctx = smallContext();
    Rng rng(80);
    RnsPoly a(ctx, ctx.qBasis(0));
    a.uniformRandom(rng);

    u64 g = galoisElementForRotation(3, ctx.n());
    std::vector<u64> out(ctx.n());
    applyAutomorphismCoeff(a.limb(0).data(), out.data(), ctx.n(), g,
                           ctx.mod(0));

    // Every input magnitude appears exactly once (up to sign), so applying
    // the inverse automorphism returns the original.
    // g_inv: g * g_inv == 1 mod 2N.
    u64 m = 2 * ctx.n();
    u64 g_inv = 1;
    for (u64 cand = 1; cand < m; cand += 2) {
        if ((cand * g) % m == 1) {
            g_inv = cand;
            break;
        }
    }
    std::vector<u64> back(ctx.n());
    applyAutomorphismCoeff(out.data(), back.data(), ctx.n(), g_inv,
                           ctx.mod(0));
    EXPECT_EQ(back, a.limbVec(0));
}

TEST(Automorphism, EvalTableIsPermutation)
{
    const u64 n = 256;
    for (i64 r : {1, 2, 5, 63}) {
        u64 g = galoisElementForRotation(r, n);
        auto table = evalAutomorphismTable(g, n);
        std::vector<bool> seen(n, false);
        for (u64 k = 0; k < n; ++k) {
            ASSERT_LT(table[k], n);
            EXPECT_FALSE(seen[table[k]]) << "duplicate at r=" << r;
            seen[table[k]] = true;
        }
    }
}

TEST(Automorphism, EvalDomainMatchesCoeffDomain)
{
    const FheContext &ctx = smallContext();
    Rng rng(81);
    RnsPoly a(ctx, ctx.qBasis(1));
    a.uniformRandom(rng);

    u64 g = galoisElementForRotation(7, ctx.n());

    // Path 1: permute in coefficient domain, then NTT.
    RnsPoly coeff_path = applyAutomorphism(a, g);
    coeff_path.toEval();

    // Path 2: NTT first, then permute in the evaluation domain.
    RnsPoly eval_path = a;
    eval_path.toEval();
    eval_path = applyAutomorphism(eval_path, g);

    for (u32 l = 0; l < a.limbCount(); ++l)
        EXPECT_EQ(coeff_path.limbVec(l), eval_path.limbVec(l))
            << "limb " << l;
}

TEST(Automorphism, RotatesPlaintextSlots)
{
    const FheContext &ctx = smallContext();
    Encoder enc(ctx);
    std::vector<double> v(enc.slots());
    for (u64 i = 0; i < enc.slots(); ++i)
        v[i] = static_cast<double>(i);

    Plaintext pt = enc.encodeReal(v, 2);
    const i64 r = 5;
    u64 g = galoisElementForRotation(r, ctx.n());
    pt.poly = applyAutomorphism(pt.poly, g);

    auto got = enc.decode(pt);
    for (u64 i = 0; i + r < enc.slots(); ++i)
        EXPECT_NEAR(got[i].real(), v[i + r], 1e-5) << i;
}

TEST(Automorphism, ConjugationConjugatesSlots)
{
    const FheContext &ctx = smallContext();
    Encoder enc(ctx);
    Rng rng(82);
    std::vector<Cplx> z(enc.slots());
    for (auto &x : z)
        x = Cplx(rng.nextDouble(), rng.nextDouble());

    Plaintext pt = enc.encode(z, 2);
    pt.poly = applyAutomorphism(pt.poly, galoisElementForConjugation(ctx.n()));
    auto got = enc.decode(pt);
    for (u64 i = 0; i < enc.slots(); ++i) {
        EXPECT_NEAR(got[i].real(), z[i].real(), 1e-5);
        EXPECT_NEAR(got[i].imag(), -z[i].imag(), 1e-5);
    }
}

}  // namespace
}  // namespace crophe::fhe
