#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/modarith.h"
#include "fhe/primes.h"

namespace crophe::fhe {
namespace {

TEST(Modarith, AddSubNegBasics)
{
    Modulus m(97);
    EXPECT_EQ(m.add(50, 60), 13u);
    EXPECT_EQ(m.add(0, 0), 0u);
    EXPECT_EQ(m.sub(10, 20), 87u);
    EXPECT_EQ(m.sub(20, 10), 10u);
    EXPECT_EQ(m.neg(0), 0u);
    EXPECT_EQ(m.neg(1), 96u);
}

TEST(Modarith, MulMatchesWideDivision)
{
    Rng rng(1);
    for (u64 q : {97ull, (1ull << 35) - 19, (1ull << 50) - 27,
                  (1ull << 59) - 55}) {
        if (!isPrime(q))
            continue;
        Modulus m(q);
        for (int i = 0; i < 2000; ++i) {
            u64 a = rng.nextBounded(q);
            u64 b = rng.nextBounded(q);
            u64 expect = static_cast<u64>(static_cast<u128>(a) * b % q);
            EXPECT_EQ(m.mul(a, b), expect) << "q=" << q;
        }
    }
}

TEST(Modarith, ReduceFull128Bits)
{
    Rng rng(2);
    Modulus m((1ull << 49) + 21);  // not prime? value irrelevant for reduce
    // Use a known prime instead.
    auto primes = generateNttPrimes(49, 1 << 10, 1);
    Modulus p(primes[0]);
    for (int i = 0; i < 2000; ++i) {
        u128 x = (static_cast<u128>(rng.next()) << 64) | rng.next();
        EXPECT_EQ(p.reduce(x), static_cast<u64>(x % p.value()));
    }
}

TEST(Modarith, PowAndInv)
{
    Modulus m(101);
    EXPECT_EQ(m.pow(2, 10), 1024 % 101);
    EXPECT_EQ(m.pow(7, 0), 1u);
    for (u64 a = 1; a < 101; ++a)
        EXPECT_EQ(m.mul(a, m.inv(a)), 1u);
}

TEST(Modarith, ShoupMatchesBarrett)
{
    Rng rng(3);
    auto primes = generateNttPrimes(55, 1 << 10, 1);
    Modulus m(primes[0]);
    for (int i = 0; i < 200; ++i) {
        u64 w = rng.nextBounded(m.value());
        ShoupMul s(w, m);
        for (int k = 0; k < 50; ++k) {
            u64 a = rng.nextBounded(m.value());
            EXPECT_EQ(s.mul(a, m.value()), m.mul(a, w));
        }
    }
}

TEST(ModarithDeath, RejectsBadModuli)
{
    EXPECT_DEATH({ Modulus m(4); (void)m; }, "modulus out of range");
    EXPECT_DEATH({ Modulus m(1ull << 61); (void)m; }, "modulus out of range");
}

class ModarithPrimeSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(ModarithPrimeSweep, MulExhaustiveAgainstReference)
{
    u32 bits = GetParam();
    auto primes = generateNttPrimes(bits, 1 << 8, 2);
    Rng rng(bits);
    for (u64 q : primes) {
        Modulus m(q);
        for (int i = 0; i < 500; ++i) {
            u64 a = rng.nextBounded(q);
            u64 b = rng.nextBounded(q);
            EXPECT_EQ(m.mul(a, b),
                      static_cast<u64>(static_cast<u128>(a) * b % q));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(WordSizes, ModarithPrimeSweep,
                         ::testing::Values(28u, 36u, 45u, 50u, 55u, 59u));

}  // namespace
}  // namespace crophe::fhe
