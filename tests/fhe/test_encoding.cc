#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fhe/encoding.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

using test::smallContext;

double
maxSlotErr(const std::vector<Cplx> &a, const std::vector<Cplx> &b)
{
    double m = 0;
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

TEST(Encoder, EncodeDecodeRoundTrip)
{
    const FheContext &ctx = smallContext();
    Encoder enc(ctx);
    Rng rng(70);

    std::vector<Cplx> z(enc.slots());
    for (auto &v : z)
        v = Cplx(rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1);

    Plaintext pt = enc.encode(z, ctx.maxLevel());
    auto back = enc.decode(pt);
    EXPECT_LT(maxSlotErr(z, back), 1e-6);
}

TEST(Encoder, RealEncodeRoundTrip)
{
    const FheContext &ctx = smallContext();
    Encoder enc(ctx);
    std::vector<double> v = {1.0, -2.5, 3.25, 0.0, 100.0, -0.001};
    Plaintext pt = enc.encodeReal(v, 2);
    auto back = enc.decode(pt);
    for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_NEAR(back[i].real(), v[i], 1e-5) << i;
        EXPECT_NEAR(back[i].imag(), 0.0, 1e-5) << i;
    }
}

TEST(Encoder, PlaintextAdditionIsSlotwise)
{
    const FheContext &ctx = smallContext();
    Encoder enc(ctx);
    Rng rng(71);
    std::vector<Cplx> z1(enc.slots()), z2(enc.slots());
    for (u64 i = 0; i < enc.slots(); ++i) {
        z1[i] = Cplx(rng.nextDouble(), 0);
        z2[i] = Cplx(rng.nextDouble(), 0);
    }
    Plaintext p1 = enc.encode(z1, 3);
    Plaintext p2 = enc.encode(z2, 3);
    p1.poly.addInplace(p2.poly);
    auto got = enc.decode(p1);
    for (u64 i = 0; i < enc.slots(); ++i)
        EXPECT_NEAR(got[i].real(), z1[i].real() + z2[i].real(), 1e-5);
}

TEST(Encoder, PlaintextMultiplicationIsSlotwise)
{
    const FheContext &ctx = smallContext();
    Encoder enc(ctx);
    Rng rng(72);
    std::vector<Cplx> z1(enc.slots()), z2(enc.slots());
    for (u64 i = 0; i < enc.slots(); ++i) {
        z1[i] = Cplx(rng.nextDouble() * 2 - 1, 0);
        z2[i] = Cplx(rng.nextDouble() * 2 - 1, 0);
    }
    Plaintext p1 = enc.encode(z1, 3);
    Plaintext p2 = enc.encode(z2, 3);
    p1.poly.mulEwInplace(p2.poly);
    p1.scale *= p2.scale;
    auto got = enc.decode(p1);
    for (u64 i = 0; i < enc.slots(); ++i)
        EXPECT_NEAR(got[i].real(), z1[i].real() * z2[i].real(), 1e-4) << i;
}

TEST(Encoder, ScaleIsRespected)
{
    const FheContext &ctx = smallContext();
    Encoder enc(ctx);
    std::vector<double> v = {0.5};
    Plaintext small = enc.encodeReal(v, 1, 1ull << 20);
    Plaintext big = enc.encodeReal(v, 1, 1ull << 40);
    EXPECT_NEAR(enc.decode(small)[0].real(), 0.5, 1e-4);
    EXPECT_NEAR(enc.decode(big)[0].real(), 0.5, 1e-10);
}

}  // namespace
}  // namespace crophe::fhe
