#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"

namespace crophe::fhe {
namespace {

std::vector<u64>
randomPoly(u64 n, u64 q, Rng &rng)
{
    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.nextBounded(q);
    return a;
}

TEST(Ntt, RoundTripIsIdentity)
{
    Rng rng(7);
    for (u64 n : {8ull, 64ull, 1024ull}) {
        auto primes = generateNttPrimes(40, n, 1);
        Modulus mod(primes[0]);
        NttTables ntt(n, mod);
        auto a = randomPoly(n, mod.value(), rng);
        auto b = a;
        ntt.forward(b);
        ntt.inverse(b);
        EXPECT_EQ(a, b) << "n=" << n;
    }
}

TEST(Ntt, ForwardMatchesNaiveUpToBitReversal)
{
    Rng rng(8);
    const u64 n = 64;
    auto primes = generateNttPrimes(40, n, 1);
    Modulus mod(primes[0]);
    NttTables ntt(n, mod);

    auto a = randomPoly(n, mod.value(), rng);
    auto fast = a;
    ntt.forward(fast);
    auto naive = nttNaiveNegacyclic(a, mod, ntt.psi());

    u32 logn = log2Exact(n);
    for (u64 k = 0; k < n; ++k)
        EXPECT_EQ(fast[k], naive[bitReverse(k, logn)]) << "k=" << k;
}

TEST(Ntt, PointwiseProductIsNegacyclicConvolution)
{
    Rng rng(9);
    const u64 n = 128;
    auto primes = generateNttPrimes(45, n, 1);
    Modulus mod(primes[0]);
    NttTables ntt(n, mod);

    auto a = randomPoly(n, mod.value(), rng);
    auto b = randomPoly(n, mod.value(), rng);
    auto expect = polyMulNaive(a, b, mod);

    auto fa = a, fb = b;
    ntt.forward(fa);
    ntt.forward(fb);
    for (u64 i = 0; i < n; ++i)
        fa[i] = mod.mul(fa[i], fb[i]);
    ntt.inverse(fa);
    EXPECT_EQ(fa, expect);
}

TEST(Ntt, LinearityOfTransform)
{
    Rng rng(10);
    const u64 n = 256;
    auto primes = generateNttPrimes(40, n, 1);
    Modulus mod(primes[0]);
    NttTables ntt(n, mod);

    auto a = randomPoly(n, mod.value(), rng);
    auto b = randomPoly(n, mod.value(), rng);
    std::vector<u64> sum(n);
    for (u64 i = 0; i < n; ++i)
        sum[i] = mod.add(a[i], b[i]);

    auto fa = a, fb = b, fs = sum;
    ntt.forward(fa);
    ntt.forward(fb);
    ntt.forward(fs);
    for (u64 i = 0; i < n; ++i)
        EXPECT_EQ(fs[i], mod.add(fa[i], fb[i]));
}

TEST(Ntt, CyclicTransformMatchesDft)
{
    Rng rng(11);
    const u64 n = 32;
    auto primes = generateNttPrimes(40, n, 1);
    Modulus mod(primes[0]);
    u64 omega = findPrimitiveRoot(mod.value(), n);

    auto a = randomPoly(n, mod.value(), rng);
    auto fast = a;
    cyclicNtt(fast.data(), n, mod, omega);

    for (u64 k = 0; k < n; ++k) {
        u64 acc = 0;
        for (u64 i = 0; i < n; ++i)
            acc = mod.add(acc, mod.mul(a[i], mod.pow(omega, (i * k) % n)));
        EXPECT_EQ(fast[k], acc) << "k=" << k;
    }
}

TEST(Ntt, CyclicRoundTrip)
{
    Rng rng(12);
    const u64 n = 128;
    auto primes = generateNttPrimes(40, n, 1);
    Modulus mod(primes[0]);
    u64 omega = findPrimitiveRoot(mod.value(), n);

    auto a = randomPoly(n, mod.value(), rng);
    auto b = a;
    cyclicNtt(b.data(), n, mod, omega);
    cyclicInverseNtt(b.data(), n, mod, omega);
    EXPECT_EQ(a, b);
}

class NttSizeSweep : public ::testing::TestWithParam<u64>
{
};

TEST_P(NttSizeSweep, RoundTripAndConvolution)
{
    const u64 n = GetParam();
    Rng rng(n);
    auto primes = generateNttPrimes(40, n, 1);
    Modulus mod(primes[0]);
    NttTables ntt(n, mod);

    auto a = randomPoly(n, mod.value(), rng);
    auto b = a;
    ntt.forward(b);
    ntt.inverse(b);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, NttSizeSweep,
                         ::testing::Values(4ull, 8ull, 16ull, 32ull, 64ull,
                                           128ull, 256ull, 512ull, 1024ull,
                                           2048ull, 4096ull));

}  // namespace
}  // namespace crophe::fhe
