#ifndef CROPHE_TESTS_FHE_TEST_UTIL_H_
#define CROPHE_TESTS_FHE_TEST_UTIL_H_

/** Shared fixtures/helpers for the FHE test binaries. */

#include <memory>

#include "fhe/rns.h"

namespace crophe::fhe::test {

/** A small but fully functional context: N=256, L=4, alpha=2. */
inline FheContextParams
smallParams()
{
    FheContextParams p;
    p.n = 256;
    p.levels = 4;
    p.alpha = 2;
    p.firstModulusBits = 50;
    p.scalingModulusBits = 35;
    p.specialModulusBits = 50;
    p.scale = static_cast<double>(1ull << 35);
    return p;
}

/** Context with alpha=1 (dnum == L+1), exercising per-prime digits. */
inline FheContextParams
smallParamsAlpha1()
{
    FheContextParams p = smallParams();
    p.alpha = 1;
    return p;
}

inline const FheContext &
smallContext()
{
    static FheContext ctx(smallParams());
    return ctx;
}

}  // namespace crophe::fhe::test

#endif  // CROPHE_TESTS_FHE_TEST_UTIL_H_
