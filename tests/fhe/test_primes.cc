#include <gtest/gtest.h>

#include <set>

#include "fhe/modarith.h"
#include "fhe/primes.h"

namespace crophe::fhe {
namespace {

TEST(Primes, IsPrimeSmall)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(97));
    EXPECT_FALSE(isPrime(91));  // 7*13
    EXPECT_TRUE(isPrime((1ull << 61) - 1));  // Mersenne
    EXPECT_FALSE(isPrime((1ull << 59) - 1));
}

TEST(Primes, GeneratedPrimesAreNttFriendly)
{
    const u64 n = 1 << 12;
    auto primes = generateNttPrimes(40, n, 8);
    ASSERT_EQ(primes.size(), 8u);
    std::set<u64> distinct(primes.begin(), primes.end());
    EXPECT_EQ(distinct.size(), 8u);
    for (u64 q : primes) {
        EXPECT_TRUE(isPrime(q));
        EXPECT_EQ((q - 1) % (2 * n), 0u) << q;
        EXPECT_GE(q, 1ull << 39);
        EXPECT_LT(q, 1ull << 40);
    }
}

TEST(Primes, SkipListIsHonored)
{
    const u64 n = 1 << 10;
    auto first = generateNttPrimes(35, n, 3);
    auto second = generateNttPrimes(35, n, 3, first);
    for (u64 q : second)
        for (u64 s : first)
            EXPECT_NE(q, s);
}

TEST(Primes, PrimitiveRootHasExactOrder)
{
    const u64 n = 1 << 10;
    auto primes = generateNttPrimes(45, n, 2);
    for (u64 q : primes) {
        Modulus m(q);
        u64 root = findPrimitiveRoot(q, 2 * n);
        EXPECT_EQ(m.pow(root, 2 * n), 1u);
        EXPECT_NE(m.pow(root, n), 1u);
        // psi^n must be -1 for the negacyclic structure.
        EXPECT_EQ(m.pow(root, n), q - 1);
    }
}

TEST(Primes, GeneratorGeneratesGroup)
{
    u64 q = 257;
    u64 g = findGenerator(q);
    Modulus m(q);
    std::set<u64> seen;
    u64 x = 1;
    for (u64 i = 0; i < q - 1; ++i) {
        seen.insert(x);
        x = m.mul(x, g);
    }
    EXPECT_EQ(seen.size(), q - 1);
}

}  // namespace
}  // namespace crophe::fhe
