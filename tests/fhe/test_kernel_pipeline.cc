/**
 * @file
 * Round-2 kernel-layer tests (DESIGN.md §13): batched NTT entry points
 * vs the per-polynomial kernels, the fused iNTT→BConv→NTT key-switch
 * pipeline vs the unfused seed flow, autotuner persistence, the typed
 * Backend enum, and the scratch-arena telemetry hooks. Suites are named
 * with the Kernel/ScratchArena prefixes so the CI sanitizer job's
 * gtest filter picks them up.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fhe/automorphism.h"
#include "fhe/bconv.h"
#include "fhe/ckks.h"
#include "fhe/kernels/autotune.h"
#include "fhe/kernels/kernels.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"
#include "telemetry/arena_stats.h"
#include "telemetry/stats_registry.h"
#include "tests/fhe/test_util.h"

namespace crophe::fhe {
namespace {

namespace fs = std::filesystem;
using test::smallContext;

std::vector<kernels::Backend>
availableBackends()
{
    std::vector<kernels::Backend> out = {kernels::Backend::Scalar};
    if (kernels::available(kernels::Backend::Avx2))
        out.push_back(kernels::Backend::Avx2);
    if (kernels::available(kernels::Backend::Avx512))
        out.push_back(kernels::Backend::Avx512);
    return out;
}

const kernels::KernelTable &
tableFor(kernels::Backend b)
{
    switch (b) {
    case kernels::Backend::Scalar:
        return kernels::scalarTable();
#ifdef CROPHE_HAVE_AVX2
    case kernels::Backend::Avx2:
        return kernels::avx2Table();
#endif
#ifdef CROPHE_HAVE_AVX512
    case kernels::Backend::Avx512:
        return kernels::avx512Table();
#endif
    default:
        break;
    }
    return kernels::scalarTable();
}

/** Restores the process-wide backend selection on scope exit. */
class BackendScope
{
  public:
    BackendScope() : saved_(kernels::activeBackend()) {}
    ~BackendScope() { kernels::setBackend(saved_); }

  private:
    kernels::Backend saved_;
};

RnsPoly
randomPoly(const FheContext &ctx, const std::vector<u32> &basis, Rng &rng,
           Rep rep = Rep::Coeff)
{
    RnsPoly p(ctx, basis, Rep::Coeff);
    for (u32 i = 0; i < p.limbCount(); ++i) {
        const u64 q = p.mod(i).value();
        u64 *d = p.limb(i).data();
        for (u64 k = 0; k < p.n(); ++k)
            d[k] = rng.nextBounded(q);
    }
    if (rep == Rep::Eval)
        p.toEval();
    return p;
}

void
expectPolysEqual(const RnsPoly &got, const RnsPoly &want, const char *what)
{
    ASSERT_EQ(got.limbCount(), want.limbCount()) << what;
    ASSERT_EQ(got.rep(), want.rep()) << what;
    for (u32 i = 0; i < got.limbCount(); ++i) {
        const u64 *g = got.limb(i).data();
        const u64 *w = want.limb(i).data();
        for (u64 k = 0; k < got.n(); ++k)
            ASSERT_EQ(g[k], w[k]) << what << " limb " << i << " coeff " << k;
    }
}

// ---------------------------------------------------------------------------
// Batched NTT: any tile width, any batch size, any backend must be
// bit-identical to looping the single-polynomial kernel.
// ---------------------------------------------------------------------------

TEST(KernelBatchedNtt, MatchesPerPolyAcrossBackendsCountsAndTiles)
{
    Rng rng(7101);
    for (u64 n : {u64(1) << 10, u64(1) << 12}) {
        u64 q = generateNttPrimes(50, n, 1)[0];
        Modulus mod(q);
        NttTables tables(n, mod);
        kernels::NttView fwd = tables.forwardView();
        kernels::NttView inv = tables.inverseView();

        for (u64 count : {u64(1), u64(2), u64(3), u64(5), u64(8)}) {
            std::vector<std::vector<u64>> input(count);
            for (auto &poly : input) {
                poly.resize(n);
                for (auto &x : poly)
                    x = rng.nextBounded(q);
            }

            for (kernels::Backend b : availableBackends()) {
                const kernels::KernelTable &kt = tableFor(b);

                // Per-polynomial reference on this backend.
                std::vector<std::vector<u64>> ref = input;
                for (auto &poly : ref)
                    kt.fwdNtt(poly.data(), fwd);

                for (u64 tile : {u64(0), u64(1), u64(2), u64(3), u64(8)}) {
                    std::vector<std::vector<u64>> got = input;
                    std::vector<u64 *> rows(count);
                    for (u64 i = 0; i < count; ++i)
                        rows[i] = got[i].data();
                    kernels::fwdNttBatched(kt, rows.data(), count, fwd,
                                           tile);
                    EXPECT_EQ(got, ref)
                        << kt.name << " fwd n=" << n << " count=" << count
                        << " tile=" << tile;
                    kernels::invNttBatched(kt, rows.data(), count, inv,
                                           tile);
                    EXPECT_EQ(got, input)
                        << kt.name << " inv n=" << n << " count=" << count
                        << " tile=" << tile;
                }
            }
        }
    }
}

TEST(KernelBatchedNtt, NullBatchedEntryFallsBackToPerPolyLoop)
{
    const u64 n = 1 << 10;
    u64 q = generateNttPrimes(50, n, 1)[0];
    Modulus mod(q);
    NttTables tables(n, mod);
    kernels::NttView fwd = tables.forwardView();
    kernels::NttView inv = tables.inverseView();

    // A table without batched entries must still work through the
    // helpers — this is the capability/fallback contract that lets a
    // backend ship without batched kernels.
    kernels::KernelTable kt = kernels::scalarTable();
    kt.fwdNttBatch = nullptr;
    kt.invNttBatch = nullptr;

    Rng rng(7102);
    std::vector<std::vector<u64>> input(4);
    for (auto &poly : input) {
        poly.resize(n);
        for (auto &x : poly)
            x = rng.nextBounded(q);
    }
    std::vector<std::vector<u64>> ref = input;
    for (auto &poly : ref)
        kernels::scalarTable().fwdNtt(poly.data(), fwd);

    std::vector<std::vector<u64>> got = input;
    std::vector<u64 *> rows;
    for (auto &poly : got)
        rows.push_back(poly.data());
    kernels::fwdNttBatched(kt, rows.data(), rows.size(), fwd);
    EXPECT_EQ(got, ref);
    kernels::invNttBatched(kt, rows.data(), rows.size(), inv);
    EXPECT_EQ(got, input);
}

TEST(KernelBatchedNtt, NttTablesBatchedWrapperRoundTrips)
{
    BackendScope backend_scope;
    const u64 n = 1 << 11;
    u64 q = generateNttPrimes(50, n, 1)[0];
    Modulus mod(q);
    NttTables tables(n, mod);

    Rng rng(7103);
    std::vector<std::vector<u64>> input(4);
    for (auto &poly : input) {
        poly.resize(n);
        for (auto &x : poly)
            x = rng.nextBounded(q);
    }
    // Reference via the single-poly public entry point.
    std::vector<std::vector<u64>> ref = input;
    for (auto &poly : ref)
        tables.forward(poly);

    for (kernels::Backend b : availableBackends()) {
        kernels::setBackend(b);
        std::vector<std::vector<u64>> got = input;
        std::vector<u64 *> rows;
        for (auto &poly : got)
            rows.push_back(poly.data());
        tables.forwardBatched(rows.data(), rows.size());
        EXPECT_EQ(got, ref) << kernels::backendName(b);
        tables.inverseBatched(rows.data(), rows.size());
        EXPECT_EQ(got, input) << kernels::backendName(b);
    }
}

// ---------------------------------------------------------------------------
// Fused iNTT→BConv→NTT pipeline vs the unfused seed flow.
// ---------------------------------------------------------------------------

TEST(KernelFusedPipeline, FusedModUpMatchesUnfusedAcrossBackendsAndDigits)
{
    BackendScope backend_scope;
    const FheContext &ctx = smallContext();
    Rng rng(7201);
    for (u32 level : {u32(1), ctx.maxLevel()}) {
        RnsPoly d_coeff = randomPoly(ctx, ctx.qBasis(level), rng);
        RnsPoly d_eval = d_coeff;
        d_eval.toEval();
        for (u32 digit = 0; digit < ctx.digitCount(level); ++digit) {
            RnsPoly want = modUpDigit(ctx, d_coeff, digit, level);
            want.toEval();
            for (kernels::Backend b : availableBackends()) {
                kernels::setBackend(b);
                RnsPoly got =
                    fusedModUpEval(ctx, d_eval, d_coeff, digit, level);
                expectPolysEqual(got, want, kernels::backendName(b));
            }
        }
    }
}

TEST(KernelFusedPipeline, ModDownPairMatchesUnfusedAcrossBackends)
{
    BackendScope backend_scope;
    const FheContext &ctx = smallContext();
    Rng rng(7202);
    for (u32 level : {u32(0), u32(2), ctx.maxLevel()}) {
        RnsPoly b_eval = randomPoly(ctx, ctx.qpBasis(level), rng, Rep::Eval);
        RnsPoly a_eval = randomPoly(ctx, ctx.qpBasis(level), rng, Rep::Eval);

        // Unfused seed flow: iNTT every limb, ModDown in coefficient
        // space, NTT everything back.
        auto unfused = [&](const RnsPoly &p) {
            RnsPoly c = p;
            c.toCoeff();
            RnsPoly down = modDown(ctx, c, level);
            down.toEval();
            return down;
        };
        RnsPoly want_b = unfused(b_eval);
        RnsPoly want_a = unfused(a_eval);

        for (kernels::Backend b : availableBackends()) {
            kernels::setBackend(b);
            auto [got_b, got_a] = modDownEvalPair(ctx, b_eval, a_eval, level);
            expectPolysEqual(got_b, want_b, kernels::backendName(b));
            expectPolysEqual(got_a, want_a, kernels::backendName(b));
        }
    }
}

TEST(KernelFusedPipeline, KeySwitchMatchesUnfusedAcrossBackendsAndThreads)
{
    BackendScope backend_scope;
    const FheContext &ctx = smallContext();
    KeyGenerator keygen(ctx, 42);
    KswKey rk = keygen.makeRotationKey(1);
    Evaluator eval(ctx, 7);

    Rng rng(7203);
    const u32 level = ctx.maxLevel();
    RnsPoly d = randomPoly(ctx, ctx.qBasis(level), rng, Rep::Eval);

    kernels::setBackend(kernels::Backend::Scalar);
    ThreadPool::setGlobalThreads(1);
    auto [want_b, want_a] = eval.keySwitchUnfused(d, level, rk);

    for (u32 threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        for (kernels::Backend b : availableBackends()) {
            kernels::setBackend(b);
            auto [got_b, got_a] = eval.keySwitch(d, level, rk);
            expectPolysEqual(got_b, want_b, kernels::backendName(b));
            expectPolysEqual(got_a, want_a, kernels::backendName(b));
            auto [ub, ua] = eval.keySwitchUnfused(d, level, rk);
            expectPolysEqual(ub, want_b, kernels::backendName(b));
            expectPolysEqual(ua, want_a, kernels::backendName(b));
        }
    }
    ThreadPool::setGlobalThreads(0);
}

// ---------------------------------------------------------------------------
// Autotuner persistence: round-trips, rejects anything suspect, and a
// bad table can only ever cost speed — never correctness (the result
// tests above cover every tile width).
// ---------------------------------------------------------------------------

std::string
freshDir(const char *name)
{
    std::string dir = testing::TempDir() + "crophe_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

TEST(KernelAutotune, PersistsAndReloadsTable)
{
    std::string dir = freshDir("autotune_rt");
    u32 tile = 0;
    {
        kernels::Autotuner tuner(dir);
        tile = tuner.batchTile(256, 2, kernels::Backend::Scalar);
        EXPECT_GE(tile, 1u);
        EXPECT_LE(tile, 8u);
        EXPECT_EQ(tuner.stats().tuned, 1u);
        EXPECT_EQ(tuner.stats().diskWrites, 1u);
        // Second query is memoized, not re-measured.
        EXPECT_EQ(tuner.batchTile(256, 2, kernels::Backend::Scalar), tile);
        EXPECT_EQ(tuner.stats().memoHits, 1u);
        EXPECT_EQ(tuner.stats().tuned, 1u);
    }
    EXPECT_TRUE(fs::exists(dir + "/autotune_ntt.tbl"));

    // A new instance adopts the persisted entry without re-tuning and
    // returns the identical tile.
    kernels::Autotuner warm(dir);
    EXPECT_GE(warm.stats().diskLoaded, 1u);
    EXPECT_EQ(warm.batchTile(256, 2, kernels::Backend::Scalar), tile);
    EXPECT_EQ(warm.stats().tuned, 0u);
}

TEST(KernelAutotune, CorruptTableIsRejectedAndRetuned)
{
    std::string dir = freshDir("autotune_corrupt");
    {
        std::ofstream os(dir + "/autotune_ntt.tbl");
        os << "crophe-ntt-autotune 999\ndeadbeef\nnot a real entry\n";
    }
    kernels::Autotuner tuner(dir);
    EXPECT_EQ(tuner.stats().diskRejects, 1u);
    EXPECT_EQ(tuner.stats().diskLoaded, 0u);
    u32 tile = tuner.batchTile(256, 2, kernels::Backend::Scalar);
    EXPECT_GE(tile, 1u);
    EXPECT_LE(tile, 8u);
    EXPECT_EQ(tuner.stats().tuned, 1u);
    // The rewritten table is now valid again.
    kernels::Autotuner warm(dir);
    EXPECT_GE(warm.stats().diskLoaded, 1u);
}

TEST(KernelAutotune, TruncatedTableIsRejectedAndRetuned)
{
    std::string dir = freshDir("autotune_trunc");
    {
        kernels::Autotuner tuner(dir);
        tuner.batchTile(256, 2, kernels::Backend::Scalar);
    }
    // Chop the checksum line off the valid table.
    std::string path = dir + "/autotune_ntt.tbl";
    std::ifstream is(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    is.close();
    ASSERT_GE(lines.size(), 2u);
    {
        std::ofstream os(path);
        for (std::size_t i = 0; i + 1 < lines.size(); ++i)
            os << lines[i] << "\n";
    }
    kernels::Autotuner tuner(dir);
    EXPECT_EQ(tuner.stats().diskRejects, 1u);
    EXPECT_EQ(tuner.stats().diskLoaded, 0u);
}

TEST(KernelAutotune, EmptyDirMeansInMemoryOnly)
{
    kernels::Autotuner tuner("");
    u32 tile = tuner.batchTile(1 << 10, 8, kernels::Backend::Scalar);
    EXPECT_GE(tile, 1u);
    EXPECT_LE(tile, 8u);
    EXPECT_EQ(tuner.stats().tuned, 1u);
    EXPECT_EQ(tuner.stats().diskWrites, 0u);
}

TEST(KernelAutotune, SingleLimbNeverTunes)
{
    kernels::Autotuner tuner("");
    EXPECT_EQ(tuner.batchTile(1 << 12, 1, kernels::Backend::Scalar), 1u);
    EXPECT_EQ(tuner.stats().tuned, 0u);
}

// ---------------------------------------------------------------------------
// Typed backend selection.
// ---------------------------------------------------------------------------

TEST(KernelBackendEnum, ParseAcceptsKnownNamesAndThrowsOnUnknown)
{
    EXPECT_EQ(kernels::parseBackend("scalar"), kernels::Backend::Scalar);
    EXPECT_EQ(kernels::parseBackend("avx2"), kernels::Backend::Avx2);
    EXPECT_EQ(kernels::parseBackend("avx512"), kernels::Backend::Avx512);
    // "auto" resolves to something runnable on this host.
    EXPECT_TRUE(kernels::available(kernels::parseBackend("auto")));
    EXPECT_THROW(kernels::parseBackend("sse9"), RecoverableError);
    EXPECT_THROW(kernels::parseBackend(""), RecoverableError);
    EXPECT_THROW(kernels::parseBackend("AVX2"), RecoverableError);
}

TEST(KernelBackendEnum, NamesRoundTripThroughParse)
{
    for (kernels::Backend b :
         {kernels::Backend::Scalar, kernels::Backend::Avx2,
          kernels::Backend::Avx512})
        EXPECT_EQ(kernels::parseBackend(kernels::backendName(b)), b);
}

// ---------------------------------------------------------------------------
// Scratch-arena telemetry.
// ---------------------------------------------------------------------------

TEST(ScratchArenaStats, RegisterIsNullGated)
{
    telemetry::registerArenaStats(nullptr);  // must be a no-op, not a crash
}

TEST(ScratchArenaStats, PeakAndRewindsReportThroughRegistry)
{
    u64 rewinds_before = ScratchArena::globalRewinds();
    {
        ScratchArena::Scope scope;
        u64 *p = ScratchArena::local().alloc<u64>(4096);
        p[0] = 1;  // keep the allocation observable
    }
    telemetry::StatsRegistry registry;
    telemetry::registerArenaStats(&registry);
    ASSERT_TRUE(registry.has("fhe.arena.peakBytes"));
    ASSERT_TRUE(registry.has("fhe.arena.rewinds"));
    EXPECT_GE(registry.value("fhe.arena.peakBytes"),
              static_cast<double>(4096 * sizeof(u64)));
    EXPECT_GE(registry.value("fhe.arena.rewinds"),
              static_cast<double>(rewinds_before + 1));
}

}  // namespace
}  // namespace crophe::fhe
