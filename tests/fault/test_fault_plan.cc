#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "fault/fault_plan.h"
#include "hw/config.h"

namespace crophe::fault {
namespace {

TEST(FaultPlan, DefaultPlanIsEmpty)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_FALSE(plan.degradesHardware());
    EXPECT_EQ(plan.toString(), "");
    EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, ParseReadsEveryKey)
{
    auto plan = FaultPlan::parse(
        "seed=7,dram-err=1e-3,dram-ecc=0.25,dram-retries=5,"
        "dram-backoff=50,stalled-channels=2,channel-stall=300,"
        "noc-fail=0.002,noc-extra-hops=4,dead-pe-groups=1,"
        "failed-sram-banks=2");
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_DOUBLE_EQ(plan.dramErrorRate, 1e-3);
    EXPECT_DOUBLE_EQ(plan.dramEccFraction, 0.25);
    EXPECT_EQ(plan.dramRetryLimit, 5u);
    EXPECT_DOUBLE_EQ(plan.dramRetryBackoffCycles, 50.0);
    EXPECT_EQ(plan.stalledDramChannels, 2u);
    EXPECT_DOUBLE_EQ(plan.channelStallCycles, 300.0);
    EXPECT_DOUBLE_EQ(plan.nocLinkFailRate, 0.002);
    EXPECT_EQ(plan.nocRerouteExtraHops, 4u);
    EXPECT_EQ(plan.deadPeGroups, 1u);
    EXPECT_EQ(plan.failedSramBanks, 2u);
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(plan.degradesHardware());
}

TEST(FaultPlan, ToStringRoundTrips)
{
    const char *spec =
        "seed=42,dram-err=0.01,stalled-channels=3,noc-fail=0.005,"
        "dead-pe-groups=2,failed-sram-banks=4";
    auto plan = FaultPlan::parse(spec);
    auto again = FaultPlan::parse(plan.toString());
    EXPECT_EQ(plan.toString(), again.toString());
    EXPECT_EQ(again.seed, plan.seed);
    EXPECT_DOUBLE_EQ(again.dramErrorRate, plan.dramErrorRate);
    EXPECT_EQ(again.stalledDramChannels, plan.stalledDramChannels);
    EXPECT_EQ(again.deadPeGroups, plan.deadPeGroups);
    EXPECT_EQ(again.failedSramBanks, plan.failedSramBanks);
}

TEST(FaultPlan, ToStringOmitsDefaults)
{
    auto plan = FaultPlan::parse("dram-err=0.5");
    EXPECT_EQ(plan.toString(), "dram-err=0.5");
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("bogus-key=1"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("seed"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("seed=abc"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("dram-err=1.5"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("dram-err=-0.1"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("dram-backoff=-1"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("dram-retries=17"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("failed-sram-banks=32"),
                 RecoverableError);
    EXPECT_THROW(FaultPlan::parse("noc-fail=nan"), RecoverableError);
}

TEST(FaultPlan, DegradedConfigShrinksTheArrayAndBuffer)
{
    auto healthy = hw::configCrophe36();
    auto plan = FaultPlan::parse("dead-pe-groups=1,failed-sram-banks=2");
    auto cfg = plan.degradedConfig(healthy);

    // One dead PE group = one mesh column of PEs gone.
    EXPECT_EQ(cfg.meshX, healthy.meshX - 1);
    EXPECT_EQ(cfg.numPes,
              healthy.numPes - healthy.numPes / healthy.meshX);
    // Two failed banks lose their capacity and bandwidth slices.
    double keep = 30.0 / 32.0;
    EXPECT_DOUBLE_EQ(cfg.sramMB, healthy.sramMB * keep);
    EXPECT_DOUBLE_EQ(cfg.sramGBs, healthy.sramGBs * keep);
    EXPECT_EQ(cfg.name, healthy.name + "+degraded");
    // The digest split is what keeps healthy plan-cache entries from
    // being served to degraded hardware.
    EXPECT_NE(hw::configDigest(cfg), hw::configDigest(healthy));
}

TEST(FaultPlan, TransientOnlyPlanLeavesHardwareAlone)
{
    auto healthy = hw::configCrophe64();
    auto plan = FaultPlan::parse("dram-err=1e-3,noc-fail=1e-3");
    EXPECT_FALSE(plan.degradesHardware());
    auto cfg = plan.degradedConfig(healthy);
    EXPECT_EQ(hw::configDigest(cfg), hw::configDigest(healthy));
}

TEST(FaultPlan, DegradedConfigRejectsTotalLoss)
{
    auto healthy = hw::configCrophe36();
    auto all_dead = FaultPlan::parse(
        "dead-pe-groups=" + std::to_string(healthy.meshX));
    EXPECT_THROW(all_dead.degradedConfig(healthy), RecoverableError);
}

TEST(FaultPlan, DegradationRatio)
{
    EXPECT_DOUBLE_EQ(degradationRatio(2.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(degradationRatio(3.0, 3.0), 1.0);
}

TEST(FaultPlan, ParsesTimedEventsSortedByTime)
{
    auto plan = FaultPlan::parse(
        "batch-fail=0.1,chip-fail@2.5=2,chip-fail@1=1,"
        "link-degrade@0.5=0.25");
    EXPECT_TRUE(plan.hasTimedFaults());
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.timedDeadChips(), 3u);
    EXPECT_DOUBLE_EQ(plan.batchFailRate, 0.1);
    ASSERT_EQ(plan.chipFails.size(), 2u);
    EXPECT_DOUBLE_EQ(plan.chipFails[0].seconds, 1.0);  // sorted by time
    EXPECT_EQ(plan.chipFails[0].chips, 1u);
    EXPECT_DOUBLE_EQ(plan.chipFails[1].seconds, 2.5);
    EXPECT_EQ(plan.chipFails[1].chips, 2u);
    ASSERT_EQ(plan.linkDegrades.size(), 1u);
    EXPECT_DOUBLE_EQ(plan.linkDegrades[0].seconds, 0.5);
    EXPECT_DOUBLE_EQ(plan.linkDegrades[0].fraction, 0.25);
}

TEST(FaultPlan, TimedEventsRoundTripThroughToString)
{
    auto plan = FaultPlan::parse(
        "seed=9,batch-fail=0.05,chip-fail@0.25=1,chip-fail@1.5=2,"
        "link-degrade@0.75=0.5");
    auto again = FaultPlan::parse(plan.toString());
    EXPECT_EQ(plan.toString(), again.toString());
    ASSERT_EQ(again.chipFails.size(), 2u);
    EXPECT_DOUBLE_EQ(again.chipFails[1].seconds, 1.5);
    EXPECT_EQ(again.chipFails[1].chips, 2u);
    ASSERT_EQ(again.linkDegrades.size(), 1u);
    EXPECT_DOUBLE_EQ(again.linkDegrades[0].fraction, 0.5);
    EXPECT_DOUBLE_EQ(again.batchFailRate, 0.05);
}

TEST(FaultPlan, RejectsMalformedTimedEvents)
{
    // A fire time is mandatory on the timed keys...
    EXPECT_THROW(FaultPlan::parse("chip-fail=1"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("link-degrade=0.5"), RecoverableError);
    // ...and only valid there.
    EXPECT_THROW(FaultPlan::parse("dram-err@1=0.5"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("chip-fail@-1=1"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("chip-fail@nan=1"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("chip-fail@1=0"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("link-degrade@1=0"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("link-degrade@1=1.5"), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("batch-fail=1.5"), RecoverableError);
}

TEST(FaultPlan, RejectionsNameTheOffendingTokenAndByteOffset)
{
    try {
        FaultPlan::parse("seed=1,bogus=2");
        FAIL() << "expected RecoverableError";
    } catch (const RecoverableError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("\"bogus=2\""), std::string::npos) << msg;
        EXPECT_NE(msg.find("at byte 7"), std::string::npos) << msg;
    }
    try {
        FaultPlan::parse("dram-err=0.1,chip-fail@oops=1");
        FAIL() << "expected RecoverableError";
    } catch (const RecoverableError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("\"chip-fail@oops=1\""), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("at byte 13"), std::string::npos) << msg;
    }
}

TEST(FaultPlan, PodSizeGuardRequiresASurvivor)
{
    // Valid: at least one chip stays alive.
    EXPECT_NO_THROW(FaultPlan::parse("dead-chips=1", 2));
    EXPECT_NO_THROW(FaultPlan::parse("dead-chips=1,chip-fail@1=1", 4));
    // dead-chips alone, a single chip-fail, and the *cumulative* total
    // must each leave a survivor.
    EXPECT_THROW(FaultPlan::parse("dead-chips=2", 2), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("chip-fail@1=2", 2), RecoverableError);
    EXPECT_THROW(FaultPlan::parse("dead-chips=1,chip-fail@1=1", 2),
                 RecoverableError);
    EXPECT_THROW(FaultPlan::parse("chip-fail@1=1,chip-fail@2=1", 2),
                 RecoverableError);
    // podChips = 0 (offline drivers without a pod) skips the guard.
    EXPECT_NO_THROW(FaultPlan::parse("dead-chips=7"));
}

TEST(FaultPlan, PodSizeGuardBlamesTheCrossingEvent)
{
    // Sorted fire order is @1 then @2; the cumulative total crosses the
    // line at the @2 event, so that token gets the blame even though it
    // appears first in the spec.
    try {
        FaultPlan::parse("chip-fail@2=1,chip-fail@1=1", 2);
        FAIL() << "expected RecoverableError";
    } catch (const RecoverableError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("\"chip-fail@2=1\""), std::string::npos) << msg;
        EXPECT_NE(msg.find("at byte 0"), std::string::npos) << msg;
    }
}

}  // namespace
}  // namespace crophe::fault
