#include <gtest/gtest.h>

#include <string>

#include <sstream>

#include "common/parallel.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "graph/workloads.h"
#include "hw/config.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace crophe::fault {
namespace {

/** The canonical chaos plan used throughout: every transient knob on.
 *  Rates are high enough that every fault class fires on any segment. */
FaultPlan
chaosPlan()
{
    return FaultPlan::parse(
        "seed=7,dram-err=0.05,dram-ecc=0.5,stalled-channels=2,"
        "noc-fail=0.05");
}

sim::SimStats
simulate(const FaultInjector *faults)
{
    auto p = graph::paramsArk();
    auto g = graph::buildHMult(p, 15);
    auto cfg = hw::configCrophe64();
    auto sched = sched::scheduleGraph(g, cfg, sched::SchedOptions{});
    return sim::simulateSchedule(sched, cfg, nullptr, faults);
}

// --- The oracle itself ----------------------------------------------------

TEST(FaultInjector, UniformIsAPureFunctionOfSeedSiteAndIndex)
{
    FaultInjector a(chaosPlan()), b(chaosPlan());
    for (u64 n = 0; n < 256; ++n) {
        double u = a.uniform(FaultSite::DramError, n);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        // Bit-identical across injector instances: no hidden state.
        EXPECT_EQ(u, b.uniform(FaultSite::DramError, n));
        // Sites are independent streams.
        EXPECT_NE(u, a.uniform(FaultSite::NocLink, n));
    }
}

TEST(FaultInjector, SeedChangesTheStream)
{
    auto plan = chaosPlan();
    FaultInjector a(plan);
    plan.seed = 8;
    FaultInjector b(plan);
    u32 differ = 0;
    for (u64 n = 0; n < 64; ++n)
        if (a.uniform(FaultSite::DramError, n) !=
            b.uniform(FaultSite::DramError, n))
            ++differ;
    EXPECT_GT(differ, 32u);
}

TEST(FaultInjector, RetriesAreBoundedSoSimulationTerminates)
{
    auto plan = FaultPlan::parse("dram-err=0.9,dram-ecc=0,dram-retries=4");
    FaultInjector inj(plan);
    for (u64 n = 0; n < 512; ++n) {
        u32 r = inj.dramRetries(n);
        EXPECT_GE(r, 1u);
        EXPECT_LE(r, plan.dramRetryLimit);
    }
}

TEST(FaultInjector, BackoffDoublesPerRetry)
{
    auto plan = FaultPlan::parse("dram-err=0.1,dram-backoff=100");
    FaultInjector inj(plan);
    EXPECT_DOUBLE_EQ(inj.retryBackoffCycles(1), 100.0);
    EXPECT_DOUBLE_EQ(inj.retryBackoffCycles(2), 300.0);  // 100 + 200
    EXPECT_DOUBLE_EQ(inj.retryBackoffCycles(3), 700.0);  // + 400
}

TEST(FaultInjector, StalledChannelPickIsSeededAndExact)
{
    auto plan = FaultPlan::parse("seed=9,stalled-channels=2");
    FaultInjector a(plan), b(plan);
    u32 stalled = 0;
    for (u32 ch = 0; ch < FaultPlan::kDramChannels; ++ch) {
        EXPECT_EQ(a.channelStalled(ch), b.channelStalled(ch));
        if (a.channelStalled(ch))
            ++stalled;
    }
    EXPECT_EQ(stalled, plan.stalledDramChannels);
}

// --- Chaos simulation contract --------------------------------------------

TEST(FaultInjection, EmptyPlanIsBitIdenticalToNoPlan)
{
    FaultInjector none(FaultPlan{});
    auto clean = simulate(nullptr);
    auto empty = simulate(&none);
    EXPECT_FALSE(empty.faultsEnabled);
    EXPECT_EQ(clean.toString(), empty.toString());
    EXPECT_EQ(clean.cycles, empty.cycles);
    EXPECT_EQ(clean.events, empty.events);
}

TEST(FaultInjection, SameSeedGivesByteIdenticalStats)
{
    FaultInjector inj(chaosPlan());
    auto a = simulate(&inj);
    auto b = simulate(&inj);
    EXPECT_TRUE(a.faultsEnabled);
    EXPECT_EQ(a.toString(), b.toString());
}

TEST(FaultInjection, FaultsOnlyEverAddLatency)
{
    FaultInjector inj(chaosPlan());
    auto clean = simulate(nullptr);
    auto faulty = simulate(&inj);
    // Retries, stalls and reroutes each charge extra cycles; a chaos run
    // can never beat its healthy twin on the same schedule.
    EXPECT_GE(faulty.cycles, clean.cycles);
    EXPECT_GT(faulty.faultDramEcc + faulty.faultDramRetried +
                  faulty.faultDramStalls + faulty.faultNocReroutes,
              0u);
    // Every retried access performs at least one re-read.
    EXPECT_GE(faulty.faultDramRetries, faulty.faultDramRetried);
}

TEST(FaultInjection, EccFractionSplitsErrorsAsConfigured)
{
    auto plan = chaosPlan();
    plan.dramEccFraction = 1.0;  // every error corrected in place
    FaultInjector all_ecc(plan);
    auto a = simulate(&all_ecc);
    EXPECT_GT(a.faultDramEcc, 0u);
    EXPECT_EQ(a.faultDramRetried, 0u);

    plan.dramEccFraction = 0.0;  // every error retried
    FaultInjector no_ecc(plan);
    auto b = simulate(&no_ecc);
    EXPECT_EQ(b.faultDramEcc, 0u);
    EXPECT_GT(b.faultDramRetried, 0u);
}

TEST(FaultInjection, StalledChannelsSlowTheRunDown)
{
    auto plan = FaultPlan::parse(
        "seed=3,stalled-channels=4,channel-stall=500");
    FaultInjector inj(plan);
    auto clean = simulate(nullptr);
    auto stalled = simulate(&inj);
    EXPECT_GT(stalled.faultDramStalls, 0u);
    EXPECT_GE(stalled.cycles, clean.cycles);
}

class FaultInjectionThreads : public testing::Test
{
  protected:
    void TearDown() override { ThreadPool::setGlobalThreads(0); }
};

TEST_F(FaultInjectionThreads, WorkloadChaosIsBitIdenticalAcrossThreadCounts)
{
    // Segments of a workload simulate concurrently; the injector's local
    // draw counters advance in simulated-event order, so the host thread
    // count must not leak into the fault decisions (DESIGN.md §9).
    FaultInjector inj(chaosPlan());
    auto p = graph::paramsSharp();
    graph::WorkloadOptions wopt;
    wopt.rotMode = graph::RotMode::Hybrid;
    wopt.rHyb = 4;
    auto w = graph::buildResNet20(p, wopt);
    auto cfg = hw::configCrophe36();
    sched::SchedOptions opt;

    std::string dumps[2];
    double cycles[2];
    u32 threads[] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        ThreadPool::setGlobalThreads(threads[i]);
        telemetry::StatsRegistry reg;
        telemetry::SimTelemetry telem;
        telem.registry = &reg;
        auto r = sim::simulateWorkload(w, cfg, opt, &telem, &inj);
        cycles[i] = r.stats.cycles;
        std::ostringstream os;
        reg.dumpJson(os);
        dumps[i] = os.str();
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(dumps[0], dumps[1]);
    // The dump must actually carry the chaos evidence.
    EXPECT_NE(dumps[0].find("fault"), std::string::npos);
}

}  // namespace
}  // namespace crophe::fault
