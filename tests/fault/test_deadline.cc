#include <gtest/gtest.h>

#include <string>

#include "fault/fault_plan.h"
#include "graph/workloads.h"
#include "hw/config.h"
#include "plan/plan_cache.h"
#include "plan/serialize.h"
#include "sched/scheduler.h"
#include "telemetry/telemetry.h"

namespace crophe::sched {
namespace {

// An already-expired budget: any positive elapsed time (>= one
// steady_clock tick) overshoots a picosecond, so the very first check
// fires and the outcome is deterministic — no wall-clock races.
constexpr double kExpired = 1e-12;

graph::Graph
testGraph()
{
    return graph::buildHMult(graph::paramsArk(), 15);
}

TEST(AnytimeDeadline, ExpiredBudgetReturnsADegradedGreedyCover)
{
    auto cfg = hw::configCrophe64();
    SchedOptions opt;
    opt.deadlineSeconds = kExpired;
    auto sched = scheduleGraph(testGraph(), cfg, opt);
    EXPECT_TRUE(sched.degraded);
    // Still a real, complete schedule: every op covered, costs attached.
    EXPECT_FALSE(sched.sequence.empty());
    EXPECT_GT(sched.stats.cycles, 0.0);
}

TEST(AnytimeDeadline, NoDeadlineMeansNoDegradation)
{
    auto cfg = hw::configCrophe64();
    auto sched = scheduleGraph(testGraph(), cfg, SchedOptions{});
    EXPECT_FALSE(sched.degraded);
}

TEST(AnytimeDeadline, GreedyFallbackIsDeterministic)
{
    auto cfg = hw::configCrophe64();
    SchedOptions opt;
    opt.deadlineSeconds = kExpired;
    auto a = scheduleGraph(testGraph(), cfg, opt);
    auto b = scheduleGraph(testGraph(), cfg, opt);
    EXPECT_EQ(plan::scheduleBytes(a), plan::scheduleBytes(b));
}

TEST(AnytimeDeadline, GreedyNeverBeatsTheExactSearch)
{
    auto cfg = hw::configCrophe64();
    SchedOptions exact_opt;
    SchedOptions greedy_opt;
    greedy_opt.deadlineSeconds = kExpired;
    auto exact = scheduleGraph(testGraph(), cfg, exact_opt);
    auto greedy = scheduleGraph(testGraph(), cfg, greedy_opt);
    // The exact DP minimizes cost-model cycles over a window space that
    // includes every greedy cover.
    EXPECT_GE(greedy.stats.cycles, exact.stats.cycles);
}

TEST(AnytimeDeadline, WorkloadResultAndTelemetryReportTheTruncation)
{
    auto p = graph::paramsArk();
    graph::WorkloadOptions wopt;
    wopt.rotMode = graph::RotMode::MinKs;
    auto w = graph::buildBootstrapping(p, wopt);
    auto cfg = hw::configCrophe64();

    telemetry::SearchTelemetry search;
    SchedOptions opt;
    opt.deadlineSeconds = kExpired;
    opt.search = &search;
    auto res = scheduleWorkload(w, cfg, opt);
    EXPECT_TRUE(res.degraded);
    EXPECT_GT(search.deadlineHits(), 0u);

    // The counter only appears in dumps when it fired, so healthy stats
    // dumps stay byte-identical to pre-anytime builds.
    telemetry::StatsRegistry reg;
    search.registerStats(reg);
    EXPECT_TRUE(reg.has("sched.search.deadlineHits"));

    telemetry::SearchTelemetry healthy_search;
    telemetry::StatsRegistry healthy_reg;
    healthy_search.registerStats(healthy_reg);
    EXPECT_FALSE(healthy_reg.has("sched.search.deadlineHits"));
}

TEST(AnytimeDeadline, TruncatedSchedulesNeverEnterThePlanCache)
{
    auto cfg = hw::configCrophe64();
    plan::PlanCache cache;
    SchedOptions opt;
    opt.deadlineSeconds = kExpired;
    opt.planCache = &cache;

    auto first = scheduleGraph(testGraph(), cfg, opt);
    EXPECT_TRUE(first.degraded);
    EXPECT_EQ(cache.stats().insertions, 0u);

    // A rerun must miss again (nothing was cached), not be served a
    // stale greedy schedule.
    auto second = scheduleGraph(testGraph(), cfg, opt);
    EXPECT_TRUE(second.degraded);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().insertions, 0u);

    // Exact searches still populate and hit as before.
    SchedOptions exact_opt;
    exact_opt.planCache = &cache;
    auto exact = scheduleGraph(testGraph(), cfg, exact_opt);
    EXPECT_FALSE(exact.degraded);
    EXPECT_EQ(cache.stats().insertions, 1u);
    auto warm = scheduleGraph(testGraph(), cfg, exact_opt);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(plan::scheduleBytes(exact), plan::scheduleBytes(warm));
}

TEST(AnytimeDeadline, HealthyCacheEntriesNeverServeDegradedHardware)
{
    auto healthy = hw::configCrophe36();
    auto fplan =
        fault::FaultPlan::parse("dead-pe-groups=1,failed-sram-banks=2");
    auto degraded = fplan.degradedConfig(healthy);

    plan::PlanCache cache;
    SchedOptions opt;
    opt.planCache = &cache;
    auto g = graph::buildHMult(graph::paramsSharp(), 15);

    auto on_healthy = scheduleGraph(g, healthy, opt);
    EXPECT_EQ(cache.stats().insertions, 1u);

    // Same graph, same options — but the degraded digest keys a
    // different entry, so this must be a miss plus a fresh insert.
    auto on_degraded = scheduleGraph(g, degraded, opt);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().insertions, 2u);
    // And the degraded schedule is genuinely different work.
    EXPECT_GE(on_degraded.stats.cycles, on_healthy.stats.cycles);

    // Warm hits now resolve per digest.
    auto warm_h = scheduleGraph(g, healthy, opt);
    auto warm_d = scheduleGraph(g, degraded, opt);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(plan::scheduleBytes(warm_h), plan::scheduleBytes(on_healthy));
    EXPECT_EQ(plan::scheduleBytes(warm_d), plan::scheduleBytes(on_degraded));
}

TEST(AnytimeDeadline, DeadlineIsExcludedFromTheOptionsDigest)
{
    // Two options differing only in deadline share a digest: a degraded
    // run may *read* exact cached plans (they are valid and better), it
    // just never writes its own.
    SchedOptions a, b;
    b.deadlineSeconds = 30.0;
    EXPECT_EQ(optionsDigest(a), optionsDigest(b));
}

}  // namespace
}  // namespace crophe::sched
