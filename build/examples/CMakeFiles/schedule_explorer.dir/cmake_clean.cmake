file(REMOVE_RECURSE
  "CMakeFiles/schedule_explorer.dir/schedule_explorer.cpp.o"
  "CMakeFiles/schedule_explorer.dir/schedule_explorer.cpp.o.d"
  "schedule_explorer"
  "schedule_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
