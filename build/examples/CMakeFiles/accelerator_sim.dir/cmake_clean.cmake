file(REMOVE_RECURSE
  "CMakeFiles/accelerator_sim.dir/accelerator_sim.cpp.o"
  "CMakeFiles/accelerator_sim.dir/accelerator_sim.cpp.o.d"
  "accelerator_sim"
  "accelerator_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
