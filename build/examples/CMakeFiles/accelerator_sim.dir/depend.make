# Empty dependencies file for accelerator_sim.
# This may be replaced when dependencies are built.
