file(REMOVE_RECURSE
  "CMakeFiles/private_inference.dir/private_inference.cpp.o"
  "CMakeFiles/private_inference.dir/private_inference.cpp.o.d"
  "private_inference"
  "private_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
