file(REMOVE_RECURSE
  "CMakeFiles/graph_tests.dir/graph/test_graph.cc.o"
  "CMakeFiles/graph_tests.dir/graph/test_graph.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_keyswitch.cc.o"
  "CMakeFiles/graph_tests.dir/graph/test_keyswitch.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_op.cc.o"
  "CMakeFiles/graph_tests.dir/graph/test_op.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_params.cc.o"
  "CMakeFiles/graph_tests.dir/graph/test_params.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_workloads.cc.o"
  "CMakeFiles/graph_tests.dir/graph/test_workloads.cc.o.d"
  "CMakeFiles/graph_tests.dir/hw/test_area.cc.o"
  "CMakeFiles/graph_tests.dir/hw/test_area.cc.o.d"
  "CMakeFiles/graph_tests.dir/hw/test_config.cc.o"
  "CMakeFiles/graph_tests.dir/hw/test_config.cc.o.d"
  "graph_tests"
  "graph_tests.pdb"
  "graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
