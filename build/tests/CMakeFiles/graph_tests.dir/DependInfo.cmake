
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_graph.cc" "tests/CMakeFiles/graph_tests.dir/graph/test_graph.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_graph.cc.o.d"
  "/root/repo/tests/graph/test_keyswitch.cc" "tests/CMakeFiles/graph_tests.dir/graph/test_keyswitch.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_keyswitch.cc.o.d"
  "/root/repo/tests/graph/test_op.cc" "tests/CMakeFiles/graph_tests.dir/graph/test_op.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_op.cc.o.d"
  "/root/repo/tests/graph/test_params.cc" "tests/CMakeFiles/graph_tests.dir/graph/test_params.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_params.cc.o.d"
  "/root/repo/tests/graph/test_workloads.cc" "tests/CMakeFiles/graph_tests.dir/graph/test_workloads.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_workloads.cc.o.d"
  "/root/repo/tests/hw/test_area.cc" "tests/CMakeFiles/graph_tests.dir/hw/test_area.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/hw/test_area.cc.o.d"
  "/root/repo/tests/hw/test_config.cc" "tests/CMakeFiles/graph_tests.dir/hw/test_config.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/hw/test_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crophe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
