file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/test_baselines.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_baselines.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_event_queue.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_event_queue.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_mapper.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_mapper.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_memory.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_memory.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_simulator.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_simulator.cc.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
