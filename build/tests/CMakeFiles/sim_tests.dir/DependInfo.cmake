
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_baselines.cc" "tests/CMakeFiles/sim_tests.dir/sim/test_baselines.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_baselines.cc.o.d"
  "/root/repo/tests/sim/test_event_queue.cc" "tests/CMakeFiles/sim_tests.dir/sim/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_event_queue.cc.o.d"
  "/root/repo/tests/sim/test_mapper.cc" "tests/CMakeFiles/sim_tests.dir/sim/test_mapper.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_mapper.cc.o.d"
  "/root/repo/tests/sim/test_memory.cc" "tests/CMakeFiles/sim_tests.dir/sim/test_memory.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_memory.cc.o.d"
  "/root/repo/tests/sim/test_simulator.cc" "tests/CMakeFiles/sim_tests.dir/sim/test_simulator.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crophe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
