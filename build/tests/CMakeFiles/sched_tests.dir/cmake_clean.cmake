file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/test_dataflow_report.cc.o"
  "CMakeFiles/sched_tests.dir/sched/test_dataflow_report.cc.o.d"
  "CMakeFiles/sched_tests.dir/sched/test_group.cc.o"
  "CMakeFiles/sched_tests.dir/sched/test_group.cc.o.d"
  "CMakeFiles/sched_tests.dir/sched/test_loopnest.cc.o"
  "CMakeFiles/sched_tests.dir/sched/test_loopnest.cc.o.d"
  "CMakeFiles/sched_tests.dir/sched/test_nttdec.cc.o"
  "CMakeFiles/sched_tests.dir/sched/test_nttdec.cc.o.d"
  "CMakeFiles/sched_tests.dir/sched/test_properties.cc.o"
  "CMakeFiles/sched_tests.dir/sched/test_properties.cc.o.d"
  "CMakeFiles/sched_tests.dir/sched/test_scheduler.cc.o"
  "CMakeFiles/sched_tests.dir/sched/test_scheduler.cc.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
