
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/test_dataflow_report.cc" "tests/CMakeFiles/sched_tests.dir/sched/test_dataflow_report.cc.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/test_dataflow_report.cc.o.d"
  "/root/repo/tests/sched/test_group.cc" "tests/CMakeFiles/sched_tests.dir/sched/test_group.cc.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/test_group.cc.o.d"
  "/root/repo/tests/sched/test_loopnest.cc" "tests/CMakeFiles/sched_tests.dir/sched/test_loopnest.cc.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/test_loopnest.cc.o.d"
  "/root/repo/tests/sched/test_nttdec.cc" "tests/CMakeFiles/sched_tests.dir/sched/test_nttdec.cc.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/test_nttdec.cc.o.d"
  "/root/repo/tests/sched/test_properties.cc" "tests/CMakeFiles/sched_tests.dir/sched/test_properties.cc.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/test_properties.cc.o.d"
  "/root/repo/tests/sched/test_scheduler.cc" "tests/CMakeFiles/sched_tests.dir/sched/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/test_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crophe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
