file(REMOVE_RECURSE
  "CMakeFiles/fhe_tests.dir/fhe/test_automorphism.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_automorphism.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_bconv.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_bconv.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_biguint.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_biguint.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_bsgs.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_bsgs.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_cfft.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_cfft.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_chebyshev.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_chebyshev.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_ckks.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_ckks.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_encoding.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_encoding.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_fourstep.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_fourstep.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_modarith.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_modarith.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_ntt.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_ntt.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_primes.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_primes.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_rns.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_rns.cc.o.d"
  "CMakeFiles/fhe_tests.dir/fhe/test_rotation.cc.o"
  "CMakeFiles/fhe_tests.dir/fhe/test_rotation.cc.o.d"
  "fhe_tests"
  "fhe_tests.pdb"
  "fhe_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
