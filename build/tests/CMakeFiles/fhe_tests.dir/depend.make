# Empty dependencies file for fhe_tests.
# This may be replaced when dependencies are built.
