
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fhe/test_automorphism.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_automorphism.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_automorphism.cc.o.d"
  "/root/repo/tests/fhe/test_bconv.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_bconv.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_bconv.cc.o.d"
  "/root/repo/tests/fhe/test_biguint.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_biguint.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_biguint.cc.o.d"
  "/root/repo/tests/fhe/test_bsgs.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_bsgs.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_bsgs.cc.o.d"
  "/root/repo/tests/fhe/test_cfft.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_cfft.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_cfft.cc.o.d"
  "/root/repo/tests/fhe/test_chebyshev.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_chebyshev.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_chebyshev.cc.o.d"
  "/root/repo/tests/fhe/test_ckks.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_ckks.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_ckks.cc.o.d"
  "/root/repo/tests/fhe/test_encoding.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_encoding.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_encoding.cc.o.d"
  "/root/repo/tests/fhe/test_fourstep.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_fourstep.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_fourstep.cc.o.d"
  "/root/repo/tests/fhe/test_modarith.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_modarith.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_modarith.cc.o.d"
  "/root/repo/tests/fhe/test_ntt.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_ntt.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_ntt.cc.o.d"
  "/root/repo/tests/fhe/test_primes.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_primes.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_primes.cc.o.d"
  "/root/repo/tests/fhe/test_rns.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_rns.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_rns.cc.o.d"
  "/root/repo/tests/fhe/test_rotation.cc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_rotation.cc.o" "gcc" "tests/CMakeFiles/fhe_tests.dir/fhe/test_rotation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crophe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
