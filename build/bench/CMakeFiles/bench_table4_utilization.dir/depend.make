# Empty dependencies file for bench_table4_utilization.
# This may be replaced when dependencies are built.
