file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_utilization.dir/bench_table4_utilization.cc.o"
  "CMakeFiles/bench_table4_utilization.dir/bench_table4_utilization.cc.o.d"
  "bench_table4_utilization"
  "bench_table4_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
