file(REMOVE_RECURSE
  "CMakeFiles/bench_ntt.dir/bench_ntt.cc.o"
  "CMakeFiles/bench_ntt.dir/bench_ntt.cc.o.d"
  "bench_ntt"
  "bench_ntt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
