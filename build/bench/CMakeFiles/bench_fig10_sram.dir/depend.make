# Empty dependencies file for bench_fig10_sram.
# This may be replaced when dependencies are built.
