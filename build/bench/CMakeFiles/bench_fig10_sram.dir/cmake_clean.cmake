file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sram.dir/bench_fig10_sram.cc.o"
  "CMakeFiles/bench_fig10_sram.dir/bench_fig10_sram.cc.o.d"
  "bench_fig10_sram"
  "bench_fig10_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
