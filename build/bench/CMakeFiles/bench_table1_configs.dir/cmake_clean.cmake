file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_configs.dir/bench_table1_configs.cc.o"
  "CMakeFiles/bench_table1_configs.dir/bench_table1_configs.cc.o.d"
  "bench_table1_configs"
  "bench_table1_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
