# Empty compiler generated dependencies file for bench_ckks_ops.
# This may be replaced when dependencies are built.
