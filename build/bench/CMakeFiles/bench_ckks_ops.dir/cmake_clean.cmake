file(REMOVE_RECURSE
  "CMakeFiles/bench_ckks_ops.dir/bench_ckks_ops.cc.o"
  "CMakeFiles/bench_ckks_ops.dir/bench_ckks_ops.cc.o.d"
  "bench_ckks_ops"
  "bench_ckks_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ckks_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
