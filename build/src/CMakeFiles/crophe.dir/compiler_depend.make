# Empty compiler generated dependencies file for crophe.
# This may be replaced when dependencies are built.
