
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline.cc" "src/CMakeFiles/crophe.dir/baselines/baseline.cc.o" "gcc" "src/CMakeFiles/crophe.dir/baselines/baseline.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/crophe.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/crophe.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/crophe.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/crophe.dir/common/rng.cc.o.d"
  "/root/repo/src/fhe/automorphism.cc" "src/CMakeFiles/crophe.dir/fhe/automorphism.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/automorphism.cc.o.d"
  "/root/repo/src/fhe/bconv.cc" "src/CMakeFiles/crophe.dir/fhe/bconv.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/bconv.cc.o.d"
  "/root/repo/src/fhe/biguint.cc" "src/CMakeFiles/crophe.dir/fhe/biguint.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/biguint.cc.o.d"
  "/root/repo/src/fhe/bsgs.cc" "src/CMakeFiles/crophe.dir/fhe/bsgs.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/bsgs.cc.o.d"
  "/root/repo/src/fhe/cfft.cc" "src/CMakeFiles/crophe.dir/fhe/cfft.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/cfft.cc.o.d"
  "/root/repo/src/fhe/chebyshev.cc" "src/CMakeFiles/crophe.dir/fhe/chebyshev.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/chebyshev.cc.o.d"
  "/root/repo/src/fhe/ckks.cc" "src/CMakeFiles/crophe.dir/fhe/ckks.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/ckks.cc.o.d"
  "/root/repo/src/fhe/encoding.cc" "src/CMakeFiles/crophe.dir/fhe/encoding.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/encoding.cc.o.d"
  "/root/repo/src/fhe/keys.cc" "src/CMakeFiles/crophe.dir/fhe/keys.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/keys.cc.o.d"
  "/root/repo/src/fhe/modarith.cc" "src/CMakeFiles/crophe.dir/fhe/modarith.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/modarith.cc.o.d"
  "/root/repo/src/fhe/ntt.cc" "src/CMakeFiles/crophe.dir/fhe/ntt.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/ntt.cc.o.d"
  "/root/repo/src/fhe/ntt_fourstep.cc" "src/CMakeFiles/crophe.dir/fhe/ntt_fourstep.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/ntt_fourstep.cc.o.d"
  "/root/repo/src/fhe/primes.cc" "src/CMakeFiles/crophe.dir/fhe/primes.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/primes.cc.o.d"
  "/root/repo/src/fhe/rns.cc" "src/CMakeFiles/crophe.dir/fhe/rns.cc.o" "gcc" "src/CMakeFiles/crophe.dir/fhe/rns.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/crophe.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/crophe.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/keyswitch_builder.cc" "src/CMakeFiles/crophe.dir/graph/keyswitch_builder.cc.o" "gcc" "src/CMakeFiles/crophe.dir/graph/keyswitch_builder.cc.o.d"
  "/root/repo/src/graph/op.cc" "src/CMakeFiles/crophe.dir/graph/op.cc.o" "gcc" "src/CMakeFiles/crophe.dir/graph/op.cc.o.d"
  "/root/repo/src/graph/params.cc" "src/CMakeFiles/crophe.dir/graph/params.cc.o" "gcc" "src/CMakeFiles/crophe.dir/graph/params.cc.o.d"
  "/root/repo/src/graph/workloads.cc" "src/CMakeFiles/crophe.dir/graph/workloads.cc.o" "gcc" "src/CMakeFiles/crophe.dir/graph/workloads.cc.o.d"
  "/root/repo/src/hw/area_model.cc" "src/CMakeFiles/crophe.dir/hw/area_model.cc.o" "gcc" "src/CMakeFiles/crophe.dir/hw/area_model.cc.o.d"
  "/root/repo/src/hw/config.cc" "src/CMakeFiles/crophe.dir/hw/config.cc.o" "gcc" "src/CMakeFiles/crophe.dir/hw/config.cc.o.d"
  "/root/repo/src/map/mapper.cc" "src/CMakeFiles/crophe.dir/map/mapper.cc.o" "gcc" "src/CMakeFiles/crophe.dir/map/mapper.cc.o.d"
  "/root/repo/src/map/trace.cc" "src/CMakeFiles/crophe.dir/map/trace.cc.o" "gcc" "src/CMakeFiles/crophe.dir/map/trace.cc.o.d"
  "/root/repo/src/sched/cost_model.cc" "src/CMakeFiles/crophe.dir/sched/cost_model.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/cost_model.cc.o.d"
  "/root/repo/src/sched/dataflow_report.cc" "src/CMakeFiles/crophe.dir/sched/dataflow_report.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/dataflow_report.cc.o.d"
  "/root/repo/src/sched/enumerator.cc" "src/CMakeFiles/crophe.dir/sched/enumerator.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/enumerator.cc.o.d"
  "/root/repo/src/sched/group.cc" "src/CMakeFiles/crophe.dir/sched/group.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/group.cc.o.d"
  "/root/repo/src/sched/hybrid_rotation.cc" "src/CMakeFiles/crophe.dir/sched/hybrid_rotation.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/hybrid_rotation.cc.o.d"
  "/root/repo/src/sched/loopnest.cc" "src/CMakeFiles/crophe.dir/sched/loopnest.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/loopnest.cc.o.d"
  "/root/repo/src/sched/mad.cc" "src/CMakeFiles/crophe.dir/sched/mad.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/mad.cc.o.d"
  "/root/repo/src/sched/ntt_decomp.cc" "src/CMakeFiles/crophe.dir/sched/ntt_decomp.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/ntt_decomp.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/crophe.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/CMakeFiles/crophe.dir/sim/dram.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sim/dram.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/crophe.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/noc.cc" "src/CMakeFiles/crophe.dir/sim/noc.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sim/noc.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/crophe.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/sram.cc" "src/CMakeFiles/crophe.dir/sim/sram.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sim/sram.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/crophe.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/transpose_unit.cc" "src/CMakeFiles/crophe.dir/sim/transpose_unit.cc.o" "gcc" "src/CMakeFiles/crophe.dir/sim/transpose_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
