file(REMOVE_RECURSE
  "libcrophe.a"
)
